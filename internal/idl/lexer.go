// Package idl implements a compiler front end for the subset of the
// OMG Interface Definition Language this ORB supports: modules,
// interfaces (with single inheritance, attributes and raises clauses),
// structs, enums, exceptions, typedefs, sequences, arrays, constants,
// and the zero-copy extension type zcoctet (the paper's ZC_Octet,
// §4.3). The package resolves declarations to TypeCodes and ORB
// operation descriptors; cmd/idlgen turns them into Go stubs and
// skeletons, mirroring the paper's modified MICO IDL compiler.
package idl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokString
	tokPunct // single-char punctuation and "::"
)

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// keywords of the supported IDL subset.
var keywords = map[string]bool{
	"module": true, "interface": true, "struct": true, "enum": true,
	"exception": true, "typedef": true, "const": true, "sequence": true,
	"string": true, "octet": true, "zcoctet": true, "boolean": true,
	"char": true, "short": true, "long": true, "unsigned": true,
	"float": true, "double": true, "void": true, "oneway": true,
	"in": true, "out": true, "inout": true, "raises": true,
	"attribute": true, "readonly": true, "Object": true, "any": true,
	"TRUE": true, "FALSE": true,
}

// Error is a positioned IDL compilation error.
type Error struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

// lexer converts IDL source into tokens.
type lexer struct {
	file   string
	src    string
	pos    int
	line   int
	col    int
	prefix string // active #pragma prefix
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (l *lexer) errf(line, col int, format string, args ...any) error {
	return &Error{File: l.file, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpace consumes whitespace, comments, and preprocessor lines
// (only "#pragma prefix" is interpreted; other # lines are ignored so
// headers with includes still parse).
func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 < len(l.src) {
				if l.peekByte() == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf(line, col, "unterminated block comment")
			}
		case c == '#':
			start := l.pos
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
			lineText := l.src[start:l.pos]
			fields := strings.Fields(lineText)
			if len(fields) >= 3 && fields[0] == "#pragma" && fields[1] == "prefix" {
				l.prefix = strings.Trim(fields[2], `"`)
			}
		default:
			return nil
		}
	}
	return nil
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.peekByte()
	switch {
	case c == '_' || unicode.IsLetter(rune(c)):
		start := l.pos
		for l.pos < len(l.src) {
			c := l.peekByte()
			if c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) {
				l.advance()
			} else {
				break
			}
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: line, col: col}, nil

	case unicode.IsDigit(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.peekByte())) ||
			l.peekByte() == 'x' || l.peekByte() == 'X' ||
			('a' <= l.peekByte() && l.peekByte() <= 'f') ||
			('A' <= l.peekByte() && l.peekByte() <= 'F')) {
			l.advance()
		}
		return token{kind: tokInt, text: l.src[start:l.pos], line: line, col: col}, nil

	case c == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(line, col, "unterminated string literal")
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\\' && l.pos < len(l.src) {
				c = l.advance()
				switch c {
				case 'n':
					c = '\n'
				case 't':
					c = '\t'
				}
			}
			b.WriteByte(c)
		}
		return token{kind: tokString, text: b.String(), line: line, col: col}, nil

	case c == ':' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':':
		l.advance()
		l.advance()
		return token{kind: tokPunct, text: "::", line: line, col: col}, nil

	case strings.IndexByte("{}()<>[];,:=+-*/", c) >= 0:
		l.advance()
		return token{kind: tokPunct, text: string(c), line: line, col: col}, nil

	default:
		return token{}, l.errf(line, col, "unexpected character %q", c)
	}
}
