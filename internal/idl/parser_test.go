package idl

import (
	"strings"
	"testing"

	"zcorba/internal/orb"
	"zcorba/internal/typecode"
)

const sampleIDL = `
// The TTCP-style store service used throughout the repository.
#pragma prefix "zcorba.test"

module Media {
    typedef sequence<octet> Blob;
    typedef sequence<zcoctet> ZBlob;
    typedef long Vec4[4];

    const long MAX_FRAMES = 0x10;
    const string VERSION = "1.0";
    const boolean DEBUG = FALSE;

    enum Codec { MPEG2, MPEG4 };

    struct FrameHeader {
        unsigned long seq;
        string        label;
        Codec         codec;
        double        pts;
    };

    exception StoreFull {
        unsigned long capacity;
    };

    interface Store {
        readonly attribute unsigned long size;
        attribute string title;

        unsigned long put(in ZBlob data) raises (StoreFull);
        ZBlob get(in unsigned long n);
        void swap(inout string s, out long extra);
        oneway void notify(in unsigned long tag);
        boolean supports(in Codec c);
        FrameHeader describe(in unsigned long seq);
    };

    interface CachingStore : Store {
        void flush();
    };
};
`

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	spec, err := Parse("test.idl", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return spec
}

func TestParseSample(t *testing.T) {
	spec := mustParse(t, sampleIDL)
	if spec.Prefix != "zcorba.test" {
		t.Fatalf("prefix %q", spec.Prefix)
	}
	if len(spec.Interfaces) != 2 {
		t.Fatalf("%d interfaces", len(spec.Interfaces))
	}
	if len(spec.Typedefs) != 3 || len(spec.Structs) != 1 ||
		len(spec.Enums) != 1 || len(spec.Exceptions) != 1 {
		t.Fatalf("decl counts: td=%d st=%d en=%d ex=%d",
			len(spec.Typedefs), len(spec.Structs), len(spec.Enums), len(spec.Exceptions))
	}
	if len(spec.Consts) != 3 {
		t.Fatalf("%d consts", len(spec.Consts))
	}
}

func TestRepoIDsIncludePrefixAndModules(t *testing.T) {
	spec := mustParse(t, sampleIDL)
	store := spec.Interfaces[0]
	if store.RepoID != "IDL:zcorba.test/Media/Store:1.0" {
		t.Fatalf("repo ID %q", store.RepoID)
	}
	if spec.Exceptions[0].Type.RepoID() != "IDL:zcorba.test/Media/StoreFull:1.0" {
		t.Fatalf("exception repo ID %q", spec.Exceptions[0].Type.RepoID())
	}
	if store.GoName != "Media_Store" {
		t.Fatalf("GoName %q", store.GoName)
	}
}

func TestZCTypeResolution(t *testing.T) {
	spec := mustParse(t, sampleIDL)
	var zblob *NamedType
	for _, td := range spec.Typedefs {
		if td.Name == "ZBlob" {
			zblob = td
		}
	}
	if zblob == nil {
		t.Fatal("ZBlob not found")
	}
	if !zblob.Type.IsZCOctetSeq() {
		t.Fatalf("ZBlob is %s, want ZC octet stream", zblob.Type)
	}
	store := spec.Interfaces[0]
	var put *orb.Operation
	for _, op := range store.Ops {
		if op.Name == "put" {
			put = op
		}
	}
	if put == nil {
		t.Fatal("put not found")
	}
	if !put.Params[0].Type.IsZCOctetSeq() {
		t.Fatal("put parameter lost its ZC type")
	}
	if len(put.Exceptions) != 1 || put.Exceptions[0].RepoID() != "IDL:zcorba.test/Media/StoreFull:1.0" {
		t.Fatalf("raises clause: %+v", put.Exceptions)
	}
}

func TestAttributesBecomeOps(t *testing.T) {
	spec := mustParse(t, sampleIDL)
	store := spec.Interfaces[0]
	iface := store.ORBInterface()
	if iface.Ops["_get_size"] == nil {
		t.Fatal("missing _get_size")
	}
	if iface.Ops["_set_size"] != nil {
		t.Fatal("readonly attribute must not have a setter")
	}
	if iface.Ops["_get_title"] == nil || iface.Ops["_set_title"] == nil {
		t.Fatal("missing title accessor ops")
	}
	set := iface.Ops["_set_title"]
	if len(set.Params) != 1 || set.Params[0].Dir != orb.In {
		t.Fatalf("setter signature %+v", set.Params)
	}
}

func TestInheritanceFlattensOps(t *testing.T) {
	spec := mustParse(t, sampleIDL)
	caching := spec.Interfaces[1]
	if caching.Base == nil || caching.Base.Name != "Store" {
		t.Fatalf("base %+v", caching.Base)
	}
	iface := caching.ORBInterface()
	if iface.Ops["put"] == nil || iface.Ops["flush"] == nil {
		t.Fatal("inherited or own op missing")
	}
}

func TestEnumAndConstValues(t *testing.T) {
	spec := mustParse(t, sampleIDL)
	var max, version, debug *ConstDef
	for _, c := range spec.Consts {
		switch c.Name {
		case "MAX_FRAMES":
			max = c
		case "VERSION":
			version = c
		case "DEBUG":
			debug = c
		}
	}
	if max == nil || max.Value.(int64) != 16 {
		t.Fatalf("MAX_FRAMES %+v", max)
	}
	if version == nil || version.Value.(string) != "1.0" {
		t.Fatalf("VERSION %+v", version)
	}
	if debug == nil || debug.Value.(bool) != false {
		t.Fatalf("DEBUG %+v", debug)
	}
	if len(spec.Enums[0].Type.Labels()) != 2 {
		t.Fatalf("enum labels %v", spec.Enums[0].Type.Labels())
	}
}

func TestStructMembers(t *testing.T) {
	spec := mustParse(t, sampleIDL)
	fh := spec.Structs[0].Type
	ms := fh.Members()
	if len(ms) != 4 {
		t.Fatalf("%d members", len(ms))
	}
	if ms[0].Type.Kind() != typecode.ULong || ms[1].Type.Kind() != typecode.String {
		t.Fatalf("member types %s %s", ms[0].Type, ms[1].Type)
	}
	if ms[2].Type.Kind() != typecode.Enum {
		t.Fatalf("codec member %s", ms[2].Type)
	}
}

func TestArrayTypedef(t *testing.T) {
	spec := mustParse(t, sampleIDL)
	for _, td := range spec.Typedefs {
		if td.Name == "Vec4" {
			r := td.Type.Resolve()
			if r.Kind() != typecode.Array || r.Len() != 4 ||
				r.Elem().Kind() != typecode.Long {
				t.Fatalf("Vec4 resolved to %s", r)
			}
			return
		}
	}
	t.Fatal("Vec4 not found")
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown type", `interface I { Foo bar(); };`, `unknown type "Foo"`},
		{"unknown type in op", `interface I { void f(in Foo x); };`, `unknown type "Foo"`},
		{"oneway non-void", `interface I { oneway long f(); };`, "must return void"},
		{"oneway out param", `interface I { oneway void f(out long x); };`, "only have in"},
		{"redeclaration", `struct S { long a; }; struct S { long b; };`, "redeclaration"},
		{"unterminated module", `module M { struct S { long a; };`, "unterminated module"},
		{"unterminated comment", `/* nope`, "unterminated block comment"},
		{"bad raises", `interface I { void f() raises (Missing); };`, "not an exception"},
		{"unterminated string", `const string S = "abc`, "unterminated string"},
		{"missing semicolon", `struct S { long a; } struct T { long b; };`, "expected"},
		{"garbage char", `struct S { long a; }; @`, "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse("t.idl", c.src)
		if err == nil {
			t.Fatalf("%s: want error", c.name)
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("%s: error %q does not contain %q", c.name, err, c.wantSub)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	src := "struct S {\n  long a;\n  Bogus b;\n};"
	_, err := Parse("pos.idl", src)
	if err == nil {
		t.Fatal("want error")
	}
	e, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if e.Line != 3 {
		t.Fatalf("line %d, want 3", e.Line)
	}
	if !strings.HasPrefix(err.Error(), "pos.idl:3:") {
		t.Fatalf("formatted error %q", err)
	}
}

func TestIncludeLinesIgnored(t *testing.T) {
	src := "#include <orb.idl>\n#pragma prefix \"x\"\nstruct S { long a; };"
	spec := mustParse(t, src)
	if len(spec.Structs) != 1 || spec.Prefix != "x" {
		t.Fatalf("spec %+v", spec)
	}
}

func TestBaseTypeCoverage(t *testing.T) {
	src := `interface T {
      void f(in octet a, in boolean b, in char c, in short d,
             in unsigned short e, in long f, in unsigned long g,
             in long long h, in unsigned long long i,
             in float j, in double k, in string l, in Object m,
             in sequence<string, 8> n);
    };`
	spec := mustParse(t, src)
	op := spec.Interfaces[0].Ops[0]
	kinds := []typecode.Kind{
		typecode.Octet, typecode.Boolean, typecode.Char, typecode.Short,
		typecode.UShort, typecode.Long, typecode.ULong, typecode.LongLong,
		typecode.ULongLong, typecode.Float, typecode.Double, typecode.String,
		typecode.ObjRef, typecode.Sequence,
	}
	if len(op.Params) != len(kinds) {
		t.Fatalf("%d params", len(op.Params))
	}
	for i, k := range kinds {
		if op.Params[i].Type.Kind() != k {
			t.Fatalf("param %d kind %v want %v", i, op.Params[i].Type.Kind(), k)
		}
	}
	if op.Params[13].Type.Len() != 8 {
		t.Fatalf("bounded sequence bound %d", op.Params[13].Type.Len())
	}
}

func TestAttributeMultiDeclarator(t *testing.T) {
	spec := mustParse(t, `interface I { attribute long a, b; };`)
	iface := spec.Interfaces[0].ORBInterface()
	for _, want := range []string{"_get_a", "_set_a", "_get_b", "_set_b"} {
		if iface.Ops[want] == nil {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestNegativeAndHexConsts(t *testing.T) {
	spec := mustParse(t, `
	  const long NEG = -42;
	  const unsigned long HEX = 0xFF;
	  typedef long Arr[0x10];`)
	if spec.Consts[0].Value.(int64) != -42 {
		t.Fatalf("NEG %v", spec.Consts[0].Value)
	}
	if spec.Consts[1].Value.(int64) != 255 {
		t.Fatalf("HEX %v", spec.Consts[1].Value)
	}
	if spec.Typedefs[0].Type.Resolve().Len() != 16 {
		t.Fatalf("array len %d", spec.Typedefs[0].Type.Resolve().Len())
	}
}

func TestStructMemberMultiDeclarator(t *testing.T) {
	spec := mustParse(t, `struct P { long x, y; double w; };`)
	ms := spec.Structs[0].Type.Members()
	if len(ms) != 3 || ms[0].Name != "x" || ms[1].Name != "y" || ms[2].Name != "w" {
		t.Fatalf("members %+v", ms)
	}
}

func TestAnyKeywordInIDL(t *testing.T) {
	spec := mustParse(t, `interface I { void push(in any ev); any pull(); };`)
	iface := spec.Interfaces[0].ORBInterface()
	if iface.Ops["push"].Params[0].Type.Kind() != typecode.Any {
		t.Fatal("any param type")
	}
	if iface.Ops["pull"].Result.Kind() != typecode.Any {
		t.Fatal("any result type")
	}
}
