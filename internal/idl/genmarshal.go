package idl

import (
	"fmt"
	"strconv"
	"strings"

	"zcorba/internal/typecode"
)

// This file emits the compiled CDR marshalers: for every named IDL
// type (struct, enum, exception, and non-octet sequence/array typedef)
// the generator produces static MarshalCDR/UnmarshalCDR methods that
// move concrete Go fields straight onto the pooled CDR coder — no
// interface{} boxing, no typecode walk — and an init() that registers
// the codecs with the ORB keyed by the contract's TypeCode vars.
// Fixed-layout primitive runs use the bulk fast paths in internal/cdr.
// The emitted code reproduces the interpreter's alignment, bound,
// range and length checks exactly, so the wire form is byte-identical
// (the differential fuzz target in internal/gentest enforces this).

// nextTmp returns a fresh suffix for generated temporaries.
func nextTmp(tmp *int) int {
	v := *tmp
	*tmp = v + 1
	return v
}

// hasMarshaler reports whether tc is a named type for which compiled
// MarshalCDR/UnmarshalCDR methods are emitted.
func (g *gen) hasMarshaler(tc *typecode.TypeCode) bool {
	if _, ok := g.goNames[tc]; !ok {
		return false
	}
	switch tc.Kind() {
	case typecode.Enum, typecode.Struct, typecode.Alias:
		return g.compilable(tc)
	}
	return false
}

// registered reports whether tc gets an orb.RegisterCDRCodec entry:
// a named, compilable, non-exception type. Exceptions keep the []any
// wire form because UserException bodies marshal outside the ORB's
// parameter path.
func (g *gen) registered(tc *typecode.TypeCode) bool {
	return g.hasMarshaler(tc) && !g.exceptions[tc]
}

// compilable reports whether a static marshaler can reproduce the
// interpreter's wire form for tc. ZC octet streams are excluded (they
// map to *zcbuf.Buffer and travel by direct deposit, not through the
// marshaling engine).
func (g *gen) compilable(tc *typecode.TypeCode) bool {
	if v, ok := g.compiledOK[tc]; ok {
		return v
	}
	g.compiledOK[tc] = true // optimistic for recursive references
	ok := g.compilableUncached(tc)
	g.compiledOK[tc] = ok
	return ok
}

func (g *gen) compilableUncached(tc *typecode.TypeCode) bool {
	switch tc.Kind() {
	case typecode.Boolean, typecode.Octet, typecode.Char, typecode.ZCOctet,
		typecode.Short, typecode.UShort, typecode.Long, typecode.ULong,
		typecode.LongLong, typecode.ULongLong, typecode.Float, typecode.Double,
		typecode.String, typecode.Enum, typecode.ObjRef, typecode.Any:
		return true
	case typecode.Alias:
		return g.compilable(tc.Elem())
	case typecode.Struct:
		for _, m := range tc.Members() {
			if !g.compilable(m.Type) {
				return false
			}
		}
		return true
	case typecode.Sequence, typecode.Array:
		if tc.Elem().Resolve().Kind() == typecode.ZCOctet {
			return false
		}
		return g.compilable(tc.Elem())
	default:
		return false
	}
}

// bulkSuffix returns the internal/cdr bulk-run method suffix for a
// fixed-width primitive kind, or "" when no bulk path applies.
func bulkSuffix(k typecode.Kind) string {
	switch k {
	case typecode.Short:
		return "ShortRun"
	case typecode.UShort:
		return "UShortRun"
	case typecode.Long:
		return "LongRun"
	case typecode.ULong:
		return "ULongRun"
	case typecode.LongLong:
		return "LongLongRun"
	case typecode.ULongLong:
		return "ULongLongRun"
	case typecode.Float:
		return "FloatRun"
	case typecode.Double:
		return "DoubleRun"
	default:
		return ""
	}
}

// scalarSuffix returns the Encoder Write* / Decoder Read* suffix for a
// scalar kind, or "" for composite kinds.
func scalarSuffix(k typecode.Kind) string {
	switch k {
	case typecode.Boolean:
		return "Boolean"
	case typecode.Octet, typecode.Char, typecode.ZCOctet:
		return "Octet"
	case typecode.Short:
		return "Short"
	case typecode.UShort:
		return "UShort"
	case typecode.Long:
		return "Long"
	case typecode.ULong:
		return "ULong"
	case typecode.LongLong:
		return "LongLong"
	case typecode.ULongLong:
		return "ULongLong"
	case typecode.Float:
		return "Float"
	case typecode.Double:
		return "Double"
	case typecode.String:
		return "String"
	default:
		return ""
	}
}

// emitMarshalers generates the compiled marshaler methods and the
// ORB codec registrations for every eligible named type.
func (g *gen) emitMarshalers() {
	for _, nt := range g.spec.Enums {
		g.emitEnumMarshal(nt)
	}
	for _, nt := range g.spec.Structs {
		if g.compilable(nt.Type) {
			g.emitStructMarshal(nt)
		}
	}
	for _, nt := range g.spec.Exceptions {
		if g.compilable(nt.Type) {
			g.emitStructMarshal(nt)
		}
	}
	for _, nt := range g.spec.Typedefs {
		tc := g.zcRewrite(nt.Type)
		if _, named := g.goNames[tc]; named && g.compilable(tc) {
			g.emitAliasMarshal(nt, tc)
		}
	}
	if len(g.regs) > 0 {
		g.marshals.WriteString("// init registers the compiled codecs with the ORB, keyed by the\n")
		g.marshals.WriteString("// contract TypeCode vars, so SII calls bypass the typecode\n")
		g.marshals.WriteString("// interpreter in both directions (docs/IDL.md, Compiled marshalers).\n")
		g.marshals.WriteString("func init() {\n")
		for _, r := range g.regs {
			g.marshals.WriteString(r)
		}
		g.marshals.WriteString("}\n\n")
	}
}

// addReg queues an orb.RegisterCDRCodec stanza for tc.
func (g *gen) addReg(tc *typecode.TypeCode, goName string) {
	if !g.registered(tc) {
		return
	}
	g.regs = append(g.regs, fmt.Sprintf(`	orb.RegisterCDRCodec(%s,
		func(e *cdr.Encoder, v any) error {
			x, ok := v.(%s)
			if !ok {
				return orb.ErrCDRFallback
			}
			return x.MarshalCDR(e)
		},
		func(d *cdr.Decoder) (any, error) {
			var x %s
			if err := x.UnmarshalCDR(d); err != nil {
				return nil, err
			}
			return x, nil
		})
`, g.tcVar(tc), goName, goName))
}

// emitEnumMarshal generates the compiled marshaler for a named enum.
func (g *gen) emitEnumMarshal(nt *NamedType) {
	g.needCDR = true
	g.needFmt = true
	n := len(nt.Type.Labels())
	fmt.Fprintf(&g.marshals,
		"// MarshalCDR writes the enum discriminant, range-checked exactly\n// like the interpreter.\nfunc (v %s) MarshalCDR(e *cdr.Encoder) error {\n\tif uint32(v) >= %d {\n\t\treturn fmt.Errorf(\"%s: enum value %%d out of range\", uint32(v))\n\t}\n\te.WriteULong(uint32(v))\n\treturn nil\n}\n\n",
		nt.GoName, n, nt.ScopedName)
	fmt.Fprintf(&g.marshals,
		"// UnmarshalCDR reads the enum discriminant with the interpreter's\n// range check.\nfunc (v *%s) UnmarshalCDR(d *cdr.Decoder) error {\n\tx, err := d.ReadULong()\n\tif err != nil {\n\t\treturn err\n\t}\n\tif x >= %d {\n\t\treturn fmt.Errorf(\"%s: enum value %%d out of range\", x)\n\t}\n\t*v = %s(x)\n\treturn nil\n}\n\n",
		nt.GoName, n, nt.ScopedName, nt.GoName)
	g.addReg(nt.Type, nt.GoName)
}

// emitStructMarshal generates the compiled marshaler for a named
// struct or exception.
func (g *gen) emitStructMarshal(nt *NamedType) {
	g.needCDR = true
	var b strings.Builder
	tmp := 0
	fmt.Fprintf(&b, "// MarshalCDR writes v in CDR member order — the compiled\n// counterpart of typecode.MarshalValue, byte-identical on the wire.\nfunc (v %s) MarshalCDR(e *cdr.Encoder) error {\n", nt.GoName)
	for _, m := range nt.Type.Members() {
		g.marshalStmts(&b, "\t", "v."+exportIdent(m.Name), m.Type, &tmp)
	}
	b.WriteString("\treturn nil\n}\n\n")

	tmp = 0
	fmt.Fprintf(&b, "// UnmarshalCDR reads v from d, matching the interpreter's checks.\nfunc (v *%s) UnmarshalCDR(d *cdr.Decoder) error {\n", nt.GoName)
	for _, m := range nt.Type.Members() {
		g.unmarshalStmts(&b, "\t", "v."+exportIdent(m.Name), m.Type, &tmp)
	}
	b.WriteString("\treturn nil\n}\n\n")
	g.marshals.WriteString(b.String())
	g.addReg(nt.Type, nt.GoName)
}

// emitAliasMarshal generates the compiled marshaler for a named
// sequence/array typedef (emitted as a named Go slice type).
func (g *gen) emitAliasMarshal(nt *NamedType, tc *typecode.TypeCode) {
	g.needCDR = true
	goName := g.goNames[tc]
	r := tc.Resolve()
	fixed := -1
	if r.Kind() == typecode.Array {
		fixed = r.Len()
	}
	var b strings.Builder
	tmp := 0
	fmt.Fprintf(&b, "// MarshalCDR writes the typedef'd run, using the bulk primitive\n// fast path where the element layout allows it.\nfunc (v %s) MarshalCDR(e *cdr.Encoder) error {\n", goName)
	g.marshalSeqBody(&b, "\t", "v", r, fixed, &tmp)
	b.WriteString("\treturn nil\n}\n\n")

	tmp = 0
	fmt.Fprintf(&b, "// UnmarshalCDR reads the typedef'd run with the interpreter's\n// bound and length checks.\nfunc (v *%s) UnmarshalCDR(d *cdr.Decoder) error {\n", goName)
	g.unmarshalSeqBody(&b, "\t", "*v", goName, r, fixed, &tmp)
	b.WriteString("\treturn nil\n}\n\n")
	g.marshals.WriteString(b.String())
	g.addReg(tc, goName)
}

// marshalStmts appends statements marshaling expr (whose Go type is
// g.goType(tc)) onto encoder e.
func (g *gen) marshalStmts(b *strings.Builder, ind, expr string, tc *typecode.TypeCode, tmp *int) {
	if g.hasMarshaler(tc) {
		fmt.Fprintf(b, "%sif err := %s.MarshalCDR(e); err != nil {\n%s\treturn err\n%s}\n", ind, expr, ind, ind)
		return
	}
	switch tc.Kind() {
	case typecode.Alias:
		g.marshalStmts(b, ind, expr, tc.Resolve(), tmp)
	case typecode.Enum:
		// Unnamed enum: range-check like the interpreter.
		g.needFmt = true
		fmt.Fprintf(b, "%sif uint32(%s) >= %d {\n%s\treturn fmt.Errorf(\"enum value %%d out of range\", uint32(%s))\n%s}\n%se.WriteULong(uint32(%s))\n",
			ind, expr, len(tc.Labels()), ind, expr, ind, ind, expr)
	case typecode.ObjRef:
		fmt.Fprintf(b, "%s%s.Marshal(e)\n", ind, expr)
	case typecode.Any:
		fmt.Fprintf(b, "%sif err := typecode.MarshalValue(e, typecode.TCAny, %s); err != nil {\n%s\treturn err\n%s}\n", ind, expr, ind, ind)
	case typecode.Sequence:
		g.marshalSeqBody(b, ind, expr, tc, -1, tmp)
	case typecode.Array:
		g.marshalSeqBody(b, ind, expr, tc, tc.Len(), tmp)
	default:
		if s := scalarSuffix(tc.Kind()); s != "" {
			fmt.Fprintf(b, "%se.Write%s(%s)\n", ind, s, expr)
		}
	}
}

// marshalSeqBody appends the marshal statements for a sequence
// (fixedLen < 0) or array (fixedLen = required element count).
func (g *gen) marshalSeqBody(b *strings.Builder, ind, expr string, tc *typecode.TypeCode, fixedLen int, tmp *int) {
	elem := tc.Elem()
	er := elem.Resolve()
	if fixedLen >= 0 {
		g.needFmt = true
		fmt.Fprintf(b, "%sif len(%s) != %d {\n%s\treturn fmt.Errorf(\"array wants %d elements, got %%d\", len(%s))\n%s}\n",
			ind, expr, fixedLen, ind, fixedLen, expr, ind)
	} else if tc.Len() > 0 {
		g.needFmt = true
		fmt.Fprintf(b, "%sif len(%s) > %d {\n%s\treturn fmt.Errorf(\"sequence bound %d exceeded (%%d)\", len(%s))\n%s}\n",
			ind, expr, tc.Len(), ind, tc.Len(), expr, ind)
	}
	if er.Kind() == typecode.Octet || er.Kind() == typecode.Char {
		if fixedLen >= 0 {
			fmt.Fprintf(b, "%se.WriteOctetRun(%s)\n", ind, expr)
		} else {
			fmt.Fprintf(b, "%se.WriteOctetSeq(%s)\n", ind, expr)
		}
		return
	}
	if fixedLen < 0 {
		fmt.Fprintf(b, "%se.WriteULong(uint32(len(%s)))\n", ind, expr)
	}
	if s := bulkSuffix(er.Kind()); s != "" && !g.hasMarshaler(elem) {
		fmt.Fprintf(b, "%se.Write%s(%s)\n", ind, s, expr)
		return
	}
	i := nextTmp(tmp)
	fmt.Fprintf(b, "%sfor i%d := range %s {\n", ind, i, expr)
	g.marshalStmts(b, ind+"\t", fmt.Sprintf("%s[i%d]", expr, i), elem, tmp)
	fmt.Fprintf(b, "%s}\n", ind)
}

// unmarshalStmts appends statements reading a value of type tc from
// decoder d into the assignable location lhs.
func (g *gen) unmarshalStmts(b *strings.Builder, ind, lhs string, tc *typecode.TypeCode, tmp *int) {
	if g.hasMarshaler(tc) {
		fmt.Fprintf(b, "%sif err := %s.UnmarshalCDR(d); err != nil {\n%s\treturn err\n%s}\n", ind, lhs, ind, ind)
		return
	}
	switch tc.Kind() {
	case typecode.Alias:
		g.unmarshalStmts(b, ind, lhs, tc.Resolve(), tmp)
	case typecode.Enum:
		g.needFmt = true
		x := nextTmp(tmp)
		fmt.Fprintf(b, "%sx%d, err := d.ReadULong()\n%sif err != nil {\n%s\treturn err\n%s}\n", ind, x, ind, ind, ind)
		fmt.Fprintf(b, "%sif x%d >= %d {\n%s\treturn fmt.Errorf(\"enum value %%d out of range\", x%d)\n%s}\n", ind, x, len(tc.Labels()), ind, x, ind)
		fmt.Fprintf(b, "%s%s = x%d\n", ind, lhs, x)
	case typecode.ObjRef:
		g.needIOR = true
		x := nextTmp(tmp)
		fmt.Fprintf(b, "%sx%d, err := ior.Unmarshal(d)\n%sif err != nil {\n%s\treturn err\n%s}\n%s%s = x%d\n",
			ind, x, ind, ind, ind, ind, lhs, x)
	case typecode.Any:
		x := nextTmp(tmp)
		fmt.Fprintf(b, "%sx%d, err := typecode.UnmarshalValue(d, typecode.TCAny)\n%sif err != nil {\n%s\treturn err\n%s}\n%s%s = x%d.(typecode.AnyValue)\n",
			ind, x, ind, ind, ind, ind, lhs, x)
	case typecode.Sequence:
		g.unmarshalSeqBody(b, ind, lhs, "", tc, -1, tmp)
	case typecode.Array:
		g.unmarshalSeqBody(b, ind, lhs, "", tc, tc.Len(), tmp)
	default:
		if s := scalarSuffix(tc.Kind()); s != "" {
			x := nextTmp(tmp)
			fmt.Fprintf(b, "%sx%d, err := d.Read%s()\n%sif err != nil {\n%s\treturn err\n%s}\n%s%s = x%d\n",
				ind, x, s, ind, ind, ind, ind, lhs, x)
		}
	}
}

// unmarshalSeqBody appends the demarshal statements for a sequence or
// array into lhs. makeType, when non-empty, is the named slice type to
// allocate (used by typedef methods); otherwise the anonymous Go type
// of tc is used.
func (g *gen) unmarshalSeqBody(b *strings.Builder, ind, lhs, makeType string, tc *typecode.TypeCode, fixedLen int, tmp *int) {
	elem := tc.Elem()
	er := elem.Resolve()
	octets := er.Kind() == typecode.Octet || er.Kind() == typecode.Char

	nExpr := strconv.Itoa(fixedLen)
	if fixedLen < 0 {
		n := nextTmp(tmp)
		fmt.Fprintf(b, "%sn%d, err := d.ReadULong()\n%sif err != nil {\n%s\treturn err\n%s}\n", ind, n, ind, ind, ind)
		if tc.Len() > 0 {
			g.needFmt = true
			fmt.Fprintf(b, "%sif n%d > %d {\n%s\treturn fmt.Errorf(\"sequence bound %d exceeded (%%d)\", n%d)\n%s}\n",
				ind, n, tc.Len(), ind, tc.Len(), n, ind)
		}
		if !octets {
			// The interpreter bounds element counts at 1<<24 for
			// non-byte sequences; reproduce that so decode failures
			// agree.
			g.needFmt = true
			fmt.Fprintf(b, "%sif n%d > 1<<24 {\n%s\treturn fmt.Errorf(\"sequence of %%d elements exceeds limit\", n%d)\n%s}\n",
				ind, n, ind, n, ind)
		}
		nExpr = fmt.Sprintf("int(n%d)", n)
	}
	if octets {
		x := nextTmp(tmp)
		fmt.Fprintf(b, "%sx%d, err := d.ReadOctetRun(%s)\n%sif err != nil {\n%s\treturn err\n%s}\n%s%s = x%d\n",
			ind, x, nExpr, ind, ind, ind, ind, lhs, x)
		return
	}
	if s := bulkSuffix(er.Kind()); s != "" && !g.hasMarshaler(elem) {
		x := nextTmp(tmp)
		fmt.Fprintf(b, "%sx%d, err := d.Read%s(%s)\n%sif err != nil {\n%s\treturn err\n%s}\n%s%s = x%d\n",
			ind, x, s, nExpr, ind, ind, ind, ind, lhs, x)
		return
	}
	mk := makeType
	if mk == "" {
		mk = g.goType(tc)
	}
	x := nextTmp(tmp)
	fmt.Fprintf(b, "%sx%d := make(%s, %s)\n", ind, x, mk, nExpr)
	i := nextTmp(tmp)
	fmt.Fprintf(b, "%sfor i%d := range x%d {\n", ind, i, x)
	g.unmarshalStmts(b, ind+"\t", fmt.Sprintf("x%d[i%d]", x, i), elem, tmp)
	fmt.Fprintf(b, "%s}\n", ind)
	fmt.Fprintf(b, "%s%s = x%d\n", ind, lhs, x)
}
