package idl

import "testing"

// FuzzParse throws arbitrary text at the IDL front end: it must return
// positioned errors, never panic, and successfully parsed specs must
// survive code generation.
func FuzzParse(f *testing.F) {
	f.Add(sampleIDL)
	f.Add(`struct S { long a; };`)
	f.Add(`module M { interface I { void f(in sequence<octet> b); }; };`)
	f.Add(`const string s = "\x";`)
	f.Add(`#pragma prefix "p"` + "\n" + `enum E { A, B };`)
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse("fuzz.idl", src)
		if err != nil {
			return
		}
		if _, err := Generate(spec, GenOptions{Package: "fuzz"}); err != nil {
			t.Fatalf("parsed spec failed to generate: %v", err)
		}
		if _, err := Generate(spec, GenOptions{Package: "fuzz", ZeroCopy: true}); err != nil {
			t.Fatalf("parsed spec failed zerocopy generation: %v", err)
		}
	})
}
