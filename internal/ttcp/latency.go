package ttcp

import (
	"fmt"
	"sort"
	"time"

	"zcorba/internal/media"
	"zcorba/internal/orb"
	"zcorba/internal/zcbuf"
)

// Latency measurements complement the bandwidth sweeps: the paper's
// related work (TAO, [18]) optimized per-invocation overheads, and the
// deposit architecture deliberately trades a little small-call latency
// (a second connection to coordinate) for bulk bandwidth. LatencyProbe
// measures per-invocation round-trip times so that trade-off — and the
// block size where the zero-copy path starts winning — is visible.

// LatencyResult summarizes a round-trip latency distribution.
type LatencyResult struct {
	Mode      Mode
	BlockSize int
	Samples   int
	Mean      time.Duration
	P50       time.Duration
	P90       time.Duration
	P99       time.Duration
}

// String renders a one-line summary.
func (r LatencyResult) String() string {
	return fmt.Sprintf("latency-%s: block %d, n=%d, mean=%v p50=%v p90=%v p99=%v",
		r.Mode, r.BlockSize, r.Samples, r.Mean, r.P50, r.P90, r.P99)
}

// CorbaLatency measures per-invocation round-trip latency against a
// Store sink for blocks of blockSize bytes, using the zero-copy
// operation when zeroCopy is set. A warmup invocation establishes the
// connections before timing starts.
func CorbaLatency(client *orb.ORB, iorStr string, blockSize, samples int,
	zeroCopy bool) (LatencyResult, error) {
	mode := ModeCorba
	if zeroCopy {
		mode = ModeZCCorba
	}
	res := LatencyResult{Mode: mode, BlockSize: blockSize, Samples: samples}
	if samples <= 0 {
		return res, fmt.Errorf("ttcp: latency needs samples > 0")
	}
	ref, err := client.StringToObject(iorStr)
	if err != nil {
		return res, err
	}
	stub := media.Media_StoreStub{Ref: ref}

	var pool zcbuf.Pool
	buf, err := pool.Get(blockSize)
	if err != nil {
		return res, err
	}
	defer buf.Release()

	call := func() error {
		var n uint32
		var err error
		if zeroCopy {
			n, err = stub.Zput(buf)
		} else {
			n, err = stub.Put(buf.Bytes())
		}
		if err != nil {
			return err
		}
		if int(n) != blockSize {
			return fmt.Errorf("ttcp: acknowledged %d of %d bytes", n, blockSize)
		}
		return nil
	}
	if err := call(); err != nil { // warmup: dial, data channel handshake
		return res, err
	}
	lats := make([]time.Duration, samples)
	for i := range lats {
		start := time.Now()
		if err := call(); err != nil {
			return res, err
		}
		lats[i] = time.Since(start)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	res.Mean = sum / time.Duration(samples)
	res.P50 = lats[samples/2]
	res.P90 = lats[samples*9/10]
	res.P99 = lats[samples*99/100]
	return res, nil
}

// Crossover sweeps small block sizes and returns, per size, the mean
// invocation latency of the standard and zero-copy paths. The size
// where the zero-copy column first wins is the deposit architecture's
// break-even point on this host.
type CrossoverPoint struct {
	BlockSize int
	Standard  time.Duration
	ZeroCopy  time.Duration
}

// Crossover measures both paths against the given sinks.
func Crossover(stdClient *orb.ORB, stdIOR string, zcClient *orb.ORB, zcIOR string,
	sizes []int, samples int) ([]CrossoverPoint, error) {
	out := make([]CrossoverPoint, 0, len(sizes))
	for _, size := range sizes {
		std, err := CorbaLatency(stdClient, stdIOR, size, samples, false)
		if err != nil {
			return out, fmt.Errorf("ttcp: crossover std %d: %w", size, err)
		}
		zc, err := CorbaLatency(zcClient, zcIOR, size, samples, true)
		if err != nil {
			return out, fmt.Errorf("ttcp: crossover zc %d: %w", size, err)
		}
		out = append(out, CrossoverPoint{BlockSize: size, Standard: std.Mean, ZeroCopy: zc.Mean})
	}
	return out, nil
}
