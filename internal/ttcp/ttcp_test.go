package ttcp

import (
	"strings"
	"testing"
	"time"

	"zcorba/internal/orb"
	"zcorba/internal/transport"
)

func TestSocketBenchRoundTrip(t *testing.T) {
	tr := &transport.TCP{}
	sink, err := NewSocketSink(tr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	res, err := SocketSend(tr, sink.Addr(), 64<<10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 8*64<<10 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if res.Mbps() <= 0 {
		t.Fatalf("throughput %v", res.Mbps())
	}
	if res.Mode != ModeRawSocket || res.Stack != "tcp" {
		t.Fatalf("labels %q %q", res.Mode, res.Stack)
	}
}

func TestSocketBenchOverCopyingStack(t *testing.T) {
	st := &transport.Stats{}
	tr := &transport.Copying{Inner: &transport.TCP{}, SendCopies: 1, RecvCopies: 1, Stats: st}
	sink, err := NewSocketSink(tr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	res, err := SocketSend(tr, sink.Addr(), 32<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 4*32<<10 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	// The copying stack must actually have churned payload bytes.
	if st.EmulatedCopyBytes.Load() < res.Bytes {
		t.Fatalf("copying stack churned only %d bytes", st.EmulatedCopyBytes.Load())
	}
}

func TestCorbaBenchStandardAndZC(t *testing.T) {
	for _, zc := range []bool{false, true} {
		tr := &transport.TCP{}
		sink, err := NewCorbaSink(tr, zc, nil)
		if err != nil {
			t.Fatal(err)
		}
		client, err := orb.New(orb.Options{Transport: &transport.TCP{}, ZeroCopy: zc})
		if err != nil {
			t.Fatal(err)
		}
		res, err := CorbaSend(client, sink.IOR, 256<<10, 4, zc)
		if err != nil {
			t.Fatalf("zc=%v: %v", zc, err)
		}
		if res.Bytes != 4*256<<10 {
			t.Fatalf("bytes=%d", res.Bytes)
		}
		copies := client.Stats().PayloadCopyBytes.Load() +
			sink.ORB.Stats().PayloadCopyBytes.Load()
		if zc && copies != 0 {
			t.Fatalf("ZC CORBA bench copied %d payload bytes", copies)
		}
		if !zc && copies < res.Bytes {
			t.Fatalf("standard CORBA bench copied only %d bytes", copies)
		}
		client.Shutdown()
		sink.Close()
	}
}

// TestCorbaBenchGather runs the gathered-deposit tier end to end: the
// sink serves a zputv gather sink, and each windowed train carries its
// registered buffers copy-free through one SendBuffers invocation.
func TestCorbaBenchGather(t *testing.T) {
	sink, err := NewCorbaSinkConfig(SinkConfig{
		Transport: &transport.TCP{}, ZeroCopy: true, GatherSegs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if sink.GatherIOR == "" {
		t.Fatal("gather sink IOR not published")
	}
	client, err := orb.New(orb.Options{Transport: &transport.TCP{}, ZeroCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Shutdown()
	res, err := CorbaSendGather(client, sink.GatherIOR, 32<<10, 6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeGatherCorba {
		t.Fatalf("mode %q", res.Mode)
	}
	if res.Bytes != 6*4*32<<10 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if res.Blocks != 24 {
		t.Fatalf("blocks=%d", res.Blocks)
	}
	st := client.Stats()
	if got := st.GatherDeposits.Load(); got != 6 {
		t.Fatalf("GatherDeposits=%d, want 6", got)
	}
	if got := st.GatherSegments.Load(); got != 24 {
		t.Fatalf("GatherSegments=%d, want 24", got)
	}
	if got := st.GatherCompletions.Load(); got != 24 {
		t.Fatalf("GatherCompletions=%d, want 24", got)
	}
	copies := st.PayloadCopyBytes.Load() + sink.ORB.Stats().PayloadCopyBytes.Load()
	if copies != 0 {
		t.Fatalf("gather bench copied %d payload bytes", copies)
	}
	if got := sink.ORB.Stats().GatherScatters.Load(); got != 6 {
		t.Fatalf("sink GatherScatters=%d, want 6", got)
	}
}

func TestResultFormatting(t *testing.T) {
	r := Result{Mode: ModeCorba, Stack: "orb", BlockSize: 4096, Blocks: 2,
		Bytes: 1e6, Elapsed: time.Second}
	if r.Mbps() != 8.0 {
		t.Fatalf("Mbps=%v", r.Mbps())
	}
	s := r.String()
	if !strings.Contains(s, "8.0 Mbit/s") || !strings.Contains(s, "corba") {
		t.Fatalf("format %q", s)
	}
	var zero Result
	if zero.Mbps() != 0 {
		t.Fatal("zero-elapsed result must report 0")
	}
}

func TestBlocksFor(t *testing.T) {
	if got := BlocksFor(4096, 1<<20, 4); got != 256 {
		t.Fatalf("got %d", got)
	}
	if got := BlocksFor(16<<20, 1<<20, 4); got != 4 {
		t.Fatalf("minimum not applied: %d", got)
	}
}

func TestPaperSweep(t *testing.T) {
	sizes := PaperSweep()
	if sizes[0] != 4<<10 || sizes[len(sizes)-1] != 16<<20 {
		t.Fatalf("sweep %v", sizes)
	}
	if len(sizes) != 13 {
		t.Fatalf("%d points", len(sizes))
	}
}

func TestCorbaLatency(t *testing.T) {
	for _, zc := range []bool{false, true} {
		tr := &transport.TCP{}
		sink, err := NewCorbaSink(tr, zc, nil)
		if err != nil {
			t.Fatal(err)
		}
		client, err := orb.New(orb.Options{Transport: &transport.TCP{}, ZeroCopy: zc})
		if err != nil {
			t.Fatal(err)
		}
		res, err := CorbaLatency(client, sink.IOR, 4096, 50, zc)
		if err != nil {
			t.Fatalf("zc=%v: %v", zc, err)
		}
		if res.Mean <= 0 || res.P50 <= 0 || res.P99 < res.P50 {
			t.Fatalf("distribution %+v", res)
		}
		if res.Samples != 50 {
			t.Fatalf("samples %d", res.Samples)
		}
		if s := res.String(); !strings.Contains(s, "block 4096") {
			t.Fatalf("format %q", s)
		}
		client.Shutdown()
		sink.Close()
	}
}

func TestCrossover(t *testing.T) {
	stdSink, err := NewCorbaSink(&transport.TCP{}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stdSink.Close()
	zcSink, err := NewCorbaSink(&transport.TCP{}, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer zcSink.Close()
	stdClient, err := orb.New(orb.Options{Transport: &transport.TCP{}})
	if err != nil {
		t.Fatal(err)
	}
	defer stdClient.Shutdown()
	zcClient, err := orb.New(orb.Options{Transport: &transport.TCP{}, ZeroCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer zcClient.Shutdown()
	points, err := Crossover(stdClient, stdSink.IOR, zcClient, zcSink.IOR,
		[]int{1024, 64 << 10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].BlockSize != 1024 {
		t.Fatalf("points %+v", points)
	}
	for _, p := range points {
		if p.Standard <= 0 || p.ZeroCopy <= 0 {
			t.Fatalf("point %+v", p)
		}
	}
}

func TestCorbaLatencyBadSamples(t *testing.T) {
	client, err := orb.New(orb.Options{Transport: &transport.TCP{}})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Shutdown()
	if _, err := CorbaLatency(client, "IOR:00", 64, 0, false); err == nil {
		t.Fatal("want error for zero samples")
	}
}
