//go:build !race

package ttcp

const raceDetectorEnabled = false
