package ttcp

import (
	"time"

	"zcorba/internal/orb"
	"zcorba/internal/transport"
)

// Chaos wraps tr with a seeded fault injector tuned for a live
// benchmark run: sporadic connection resets on both the control and
// the deposit stream, plus the occasional refused dial. The same seed
// reproduces the same fault schedule against the same request stream.
// The returned injector reports how many faults fired and where.
func Chaos(tr transport.Transport, seed int64) (transport.Transport, *transport.FaultInjector) {
	inj := transport.NewFaultInjector(seed).
		Add(transport.Rule{Op: transport.OpRead, Class: transport.ClassControl,
			Kind: transport.FaultReset, Prob: 0.0005}).
		Add(transport.Rule{Op: transport.OpWrite, Class: transport.ClassControl,
			Kind: transport.FaultReset, Prob: 0.0002}).
		Add(transport.Rule{Op: transport.OpWrite, Class: transport.ClassData,
			Kind: transport.FaultReset, Prob: 0.0005}).
		Add(transport.Rule{Op: transport.OpDial,
			Kind: transport.FaultRefuse, Prob: 0.02, Count: 3})
	return &transport.Faulty{Inner: tr, Inj: inj}, inj
}

// ChaosRetry is the client retry policy paired with Chaos: the
// benchmark's put/zput stream is treated as retry-safe (the sink
// discards payloads), so retries are allowed even on uncertain
// completion.
func ChaosRetry() orb.RetryPolicy {
	return orb.RetryPolicy{
		MaxAttempts:        5,
		InitialBackoff:     time.Millisecond,
		MaxBackoff:         50 * time.Millisecond,
		RetryNonIdempotent: true,
	}
}
