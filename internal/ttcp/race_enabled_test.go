//go:build race

package ttcp

// raceDetectorEnabled reports whether this test binary was built with
// -race; the cross-process throughput ratios skip then, since race
// instrumentation slows the in-process ring spin loop far more than
// the kernel-side TCP path and the comparison would measure the
// instrumentation, not the data plane.
const raceDetectorEnabled = true
