//go:build !linux

package ttcp

import "testing"

// The cross-process shm tests fork real sink processes wired through
// memfd + SCM_RIGHTS, so they only run on linux.

func TestShmCrossProcessThroughput(t *testing.T) {
	t.Skip("shm data plane requires linux (memfd_create + SCM_RIGHTS)")
}

func TestShmCrossProcessKillReclaims(t *testing.T) {
	t.Skip("shm data plane requires linux (memfd_create + SCM_RIGHTS)")
}
