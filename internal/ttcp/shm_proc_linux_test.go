//go:build linux

package ttcp

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"zcorba/internal/orb"
	"zcorba/internal/shmem"
	"zcorba/internal/transport"
)

// TestShmSinkHelper is not a test: it is the server half of the
// cross-process shm tests, re-executed from this test binary with
// TTCP_SHM_HELPER set. It brings up a CORBA sink (shared-memory data
// plane when TTCP_SHM_DATA is set, copying-stack standard ORB when
// TTCP_SHM_STD is set), publishes its IOR, and serves until the parent
// closes its stdin or kills it.
func TestShmSinkHelper(t *testing.T) {
	if os.Getenv("TTCP_SHM_HELPER") == "" {
		t.Skip("cross-process helper entry point; spawned by the tests below")
	}
	var tr transport.Transport = &transport.TCP{}
	zc := true
	if os.Getenv("TTCP_SHM_STD") != "" {
		tr = &transport.Copying{Inner: &transport.TCP{}, SendCopies: 1, RecvCopies: 1}
		zc = false
	}
	sink, err := NewCorbaSinkData(tr, zc, nil, os.Getenv("TTCP_SHM_DATA"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper: sink:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(os.Getenv("TTCP_SHM_IOR"), []byte(sink.IOR), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "helper: ior:", err)
		os.Exit(1)
	}
	_, _ = io.Copy(io.Discard, os.Stdin) // parent's stdin close = shutdown
	sink.Close()
}

// spawnSink forks this test binary as a sink process (dataAddr "" keeps
// the data plane on TCP; std selects the copying-stack standard ORB)
// and waits for its IOR.
func spawnSink(t *testing.T, dataAddr string, std bool) (string, *exec.Cmd) {
	t.Helper()
	iorFile := filepath.Join(t.TempDir(), "sink.ior")
	cmd := exec.Command(os.Args[0], "-test.run", "^TestShmSinkHelper$")
	cmd.Env = append(os.Environ(),
		"TTCP_SHM_HELPER=1", "TTCP_SHM_DATA="+dataAddr, "TTCP_SHM_IOR="+iorFile)
	if std {
		cmd.Env = append(cmd.Env, "TTCP_SHM_STD=1")
	}
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatalf("stdin pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn sink: %v", err)
	}
	t.Cleanup(func() {
		_ = stdin.Close()
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(iorFile); err == nil && len(b) > 0 {
			return string(b), cmd
		}
		if time.Now().After(deadline) {
			t.Fatal("sink helper never published its IOR")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShmCrossProcessThroughput runs the §5.1 measurement the shm data
// plane exists for: two real processes on one host, 1 MiB blocks. The
// ring path is held to >= 5x the paper's baseline — the unmodified
// (marshaling) ORB over the copying TCP stack — and must not regress
// below the zero-copy TCP deposit path, the next-best transport for
// co-located endpoints. The measured ratios are logged.
func TestShmCrossProcessThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-process throughput run skipped in -short mode")
	}
	shmIOR, _ := spawnSink(t, "shm://"+filepath.Join(t.TempDir(), "data.sock"), false)
	tcpIOR, _ := spawnSink(t, "", false)
	stdIOR, _ := spawnSink(t, "", true)

	const size, window = 1 << 20, 16
	measure := func(ior string, blocks int, std bool) (Result, *orb.ORB) {
		var tr transport.Transport = &transport.TCP{}
		if std {
			tr = &transport.Copying{Inner: &transport.TCP{}, SendCopies: 1, RecvCopies: 1}
		}
		client, err := orb.New(orb.Options{Transport: tr, ZeroCopy: !std})
		if err != nil {
			t.Fatalf("client ORB: %v", err)
		}
		t.Cleanup(client.Shutdown)
		// Warm the connection, the promotion handshake, and the pools.
		if _, err := CorbaSendWindow(client, ior, size, 8, window, !std); err != nil {
			t.Fatalf("warmup: %v", err)
		}
		res, err := CorbaSendWindow(client, ior, size, blocks, window, !std)
		if err != nil {
			t.Fatalf("transfer: %v", err)
		}
		return res, client
	}

	shmRes, shmClient := measure(shmIOR, 256, false)
	tcpRes, _ := measure(tcpIOR, 256, false)
	stdRes, _ := measure(stdIOR, 64, true)
	if n := shmClient.Stats().ShmDeposits.Load(); n == 0 {
		t.Fatal("shm client made no ring deposits: promotion did not happen")
	}
	if n := shmClient.Stats().PayloadCopyBytes.Load(); n != 0 {
		t.Fatalf("shm client copied %d payload bytes", n)
	}
	vsStd := shmRes.Mbps() / stdRes.Mbps()
	vsZC := shmRes.Mbps() / tcpRes.Mbps()
	t.Logf("cross-process 1MiB: shm %.0f, zc-tcp %.0f, std-corba %.0f Mbit/s (%.1fx std, %.2fx zc-tcp)",
		shmRes.Mbps(), tcpRes.Mbps(), stdRes.Mbps(), vsStd, vsZC)
	if raceDetectorEnabled {
		// Transfers above already gave the race detector its coverage;
		// instrumented atomics throttle the ring's spin loop far more
		// than the kernel TCP path, so the ratios are meaningless here.
		t.Log("race detector enabled: skipping throughput ratio gates")
		return
	}
	if vsStd < 5 {
		t.Fatalf("shm data plane only %.2fx the standard copying-stack ORB, want >= 5x", vsStd)
	}
	if vsZC < 0.8 {
		t.Fatalf("shm data plane regressed to %.2fx the zero-copy TCP path", vsZC)
	}
}

// TestShmCrossProcessKillReclaims SIGKILLs the sink process in the
// middle of a pipelined 1 MiB stream: the client must surface an error
// (not hang) and every ring segment it mapped must be unmapped by the
// failure machinery itself — before client shutdown.
func TestShmCrossProcessKillReclaims(t *testing.T) {
	base := shmem.LiveSegments()
	ior, cmd := spawnSink(t, "shm://"+filepath.Join(t.TempDir(), "data.sock"), false)
	client, err := orb.New(orb.Options{
		Transport: &transport.TCP{}, ZeroCopy: true,
		CallTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("client ORB: %v", err)
	}
	defer client.Shutdown()

	// Prove the ring is up before pulling the trigger.
	if _, err := CorbaSendWindow(client, ior, 1<<20, 2, 1, true); err != nil {
		t.Fatalf("pre-kill transfer: %v", err)
	}
	if client.Stats().ShmDeposits.Load() == 0 {
		t.Fatal("ring path not taken before the kill")
	}
	if shmem.LiveSegments() <= base {
		t.Fatal("no live segment while the ring is up")
	}

	errCh := make(chan error, 1)
	go func() {
		_, err := CorbaSendWindow(client, ior, 1<<20, 1<<20, 8, true)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill sink: %v", err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("stream kept succeeding after SIGKILL of the sink")
		}
		t.Logf("stream failed as expected: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("client hung after sink SIGKILL")
	}
	// The segment must be reclaimed by the death-detection path alone.
	deadline := time.Now().Add(5 * time.Second)
	for shmem.LiveSegments() > base {
		if time.Now().After(deadline) {
			t.Fatalf("segments leaked after peer kill: %d live, baseline %d",
				shmem.LiveSegments(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
