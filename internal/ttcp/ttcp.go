// Package ttcp reimplements the TTCP throughput benchmark of §5.1 for
// every configuration the paper measures: raw sockets over the
// standard (copying) stack, sockets over the zero-copy stack, CORBA
// over either stack with the standard ORB path, and CORBA with the
// zero-copy ORB (direct deposit). It produces the series plotted in
// Figures 5 and 6.
//
// As in the original tool, a transmitter pushes a configurable number
// of fixed-size blocks to a remote receiver and reports end-to-end
// throughput in Mbit/s; block sizes sweep 4 KiB..16 MiB in the paper's
// 4 KiB-aligned buffers.
package ttcp

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"zcorba/internal/media"
	"zcorba/internal/orb"
	"zcorba/internal/trace"
	"zcorba/internal/transport"
	"zcorba/internal/typecode"
	"zcorba/internal/zcbuf"
)

// Mode names a benchmark configuration.
type Mode string

// Benchmark configurations, matching the paper's TTCP variants.
const (
	// ModeRawSocket is the C TTCP: sockets over the configured stack.
	ModeRawSocket Mode = "socket"
	// ModeCorba is the CORBA TTCP using the standard marshal path.
	ModeCorba Mode = "corba"
	// ModeZCCorba is the CORBA TTCP using the zero-copy ORB.
	ModeZCCorba Mode = "zc-corba"
	// ModeShmCorba is the CORBA TTCP with the shared-memory data plane:
	// zero-copy deposits straight into a ring mapped by both processes.
	ModeShmCorba Mode = "shm-corba"
	// ModeKzcCorba is the CORBA TTCP with the kernel zero-copy data
	// plane: blocks at or above the negotiated threshold are sent with
	// MSG_ZEROCOPY (pages pinned until the errqueue completion), the
	// rest plain-written on the same channel.
	ModeKzcCorba Mode = "kzc-corba"
	// ModeGatherCorba is the CORBA TTCP using gathered deposits: each
	// request carries N registered buffers as one deposit train
	// (orb.ObjectRef.SendBuffers — a single vectored write per train,
	// per-buffer completion callbacks gating reuse).
	ModeGatherCorba Mode = "gather-corba"
)

// Result is one benchmark measurement.
type Result struct {
	Mode      Mode
	Stack     string // transport name, e.g. "tcp" or "copying(tcp)"
	BlockSize int
	Blocks    int
	// Window is the pipelined in-flight request bound (1 for the
	// synchronous one-request-per-round-trip senders).
	Window  int
	Bytes   int64
	Elapsed time.Duration
}

// Mbps returns the measured throughput in megabits per second.
func (r Result) Mbps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Elapsed.Seconds() / 1e6
}

// ReqPerSec returns the measured request rate (blocks per second) —
// the per-request software overhead view of the same measurement.
func (r Result) ReqPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Blocks) / r.Elapsed.Seconds()
}

// String renders the result like the original ttcp summary line.
func (r Result) String() string {
	w := r.Window
	if w < 1 {
		w = 1
	}
	return fmt.Sprintf("ttcp-%s[%s]: %d bytes in %.3fs = %.1f Mbit/s, %.0f req/s (block %d, window %d)",
		r.Mode, r.Stack, r.Bytes, r.Elapsed.Seconds(), r.Mbps(), r.ReqPerSec(), r.BlockSize, w)
}

// ---------------------------------------------------------------------------
// Socket variant

// SocketSink is the receiving side of the socket benchmark. It accepts
// any number of transmitter connections; each sends a length header
// and a byte stream, and receives an 8-byte acknowledgement.
type SocketSink struct {
	lis  transport.Listener
	done chan struct{}
}

// NewSocketSink binds a sink on tr.
func NewSocketSink(tr transport.Transport, addr string) (*SocketSink, error) {
	lis, err := tr.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("ttcp: sink listen: %w", err)
	}
	s := &SocketSink{lis: lis, done: make(chan struct{})}
	go s.serve()
	return s, nil
}

// Addr returns the sink's dialable address.
func (s *SocketSink) Addr() string { return s.lis.Addr() }

// Close stops the sink.
func (s *SocketSink) Close() error { return s.lis.Close() }

func (s *SocketSink) serve() {
	var pool zcbuf.Pool
	for {
		c, err := s.lis.Accept()
		if err != nil {
			return
		}
		go func(c transport.Conn) {
			defer c.Close()
			var hdr [16]byte
			if _, err := io.ReadFull(c, hdr[:]); err != nil {
				return
			}
			total := int64(binary.BigEndian.Uint64(hdr[:8]))
			block := int64(binary.BigEndian.Uint64(hdr[8:]))
			if block <= 0 || block > 64<<20 || total < 0 {
				return
			}
			// Deposit every block into a page-aligned buffer, as the
			// zero-copy receiver would; the copying stack shim adds
			// its kernel-copy cost underneath when configured.
			buf, err := pool.Get(int(block))
			if err != nil {
				return
			}
			defer buf.Release()
			left := total
			for left > 0 {
				n := block
				if left < n {
					n = left
				}
				if _, err := io.ReadFull(c, buf.Bytes()[:n]); err != nil {
					return
				}
				left -= n
			}
			var ack [8]byte
			binary.BigEndian.PutUint64(ack[:], uint64(total))
			_, _ = c.Write(ack[:])
		}(c)
	}
}

// SocketSend transmits blocks of blockSize bytes to a sink and returns
// the measurement. The payload buffer is page-aligned and reused, as
// in the original TTCP's aligned 4 KiB buffers.
func SocketSend(tr transport.Transport, addr string, blockSize, blocks int) (Result, error) {
	res := Result{Mode: ModeRawSocket, Stack: tr.Name(), BlockSize: blockSize, Blocks: blocks}
	c, err := tr.Dial(addr)
	if err != nil {
		return res, fmt.Errorf("ttcp: dial sink: %w", err)
	}
	defer c.Close()

	var pool zcbuf.Pool
	buf, err := pool.Get(blockSize)
	if err != nil {
		return res, err
	}
	defer buf.Release()
	payload := buf.Bytes()
	for i := range payload {
		payload[i] = byte(i)
	}
	total := int64(blockSize) * int64(blocks)
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[:8], uint64(total))
	binary.BigEndian.PutUint64(hdr[8:], uint64(blockSize))

	start := time.Now()
	if _, err := c.Write(hdr[:]); err != nil {
		return res, fmt.Errorf("ttcp: header: %w", err)
	}
	for i := 0; i < blocks; i++ {
		if _, err := c.WriteGather(payload); err != nil {
			return res, fmt.Errorf("ttcp: block %d: %w", i, err)
		}
	}
	var ack [8]byte
	if _, err := io.ReadFull(c, ack[:]); err != nil {
		return res, fmt.Errorf("ttcp: ack: %w", err)
	}
	res.Elapsed = time.Since(start)
	res.Bytes = total
	if got := int64(binary.BigEndian.Uint64(ack[:])); got != total {
		return res, fmt.Errorf("ttcp: sink acknowledged %d of %d bytes", got, total)
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// CORBA variant

// CorbaSink serves the Media::Store interface as the benchmark
// receiver. The same servant handles both the standard and the
// zero-copy operation, exactly as the paper ran standard and ZC octet
// streams through one MICO server.
type CorbaSink struct {
	ORB *orb.ORB
	IOR string
	// GatherIOR names the gather sink (SinkConfig.GatherSegs); empty
	// when the gather tier is off.
	GatherIOR string
}

// sinkServant discards received blocks. Requests dispatch concurrently
// (and a retrying client may overlap connections), so the byte count is
// atomic.
type sinkServant struct{ received atomic.Uint64 }

func (s *sinkServant) GetReceived() (uint64, error) { return s.received.Load(), nil }
func (s *sinkServant) Put(data []byte) (uint32, error) {
	s.received.Add(uint64(len(data)))
	return uint32(len(data)), nil
}
func (s *sinkServant) Zput(data *zcbuf.Buffer) (uint32, error) {
	s.received.Add(uint64(data.Len()))
	return uint32(data.Len()), nil
}
func (s *sinkServant) Get(n uint32) ([]byte, error) { return make([]byte, n), nil }
func (s *sinkServant) Zget(n uint32) (*zcbuf.Buffer, error) {
	return zcbuf.Wrap(make([]byte, n)), nil
}
func (s *sinkServant) Describe(seq uint32) (media.Media_FrameInfo, error) {
	return media.Media_FrameInfo{Seq: seq}, nil
}
func (s *sinkServant) Reset() error { s.received.Store(0); return nil }

// NewCorbaSink starts an ORB on tr serving a Store sink. zeroCopy
// controls whether the ORB offers the direct-deposit channel; tracer
// (optional) records the sink's server-side spans.
func NewCorbaSink(tr transport.Transport, zeroCopy bool, tracer *trace.Tracer) (*CorbaSink, error) {
	return NewCorbaSinkData(tr, zeroCopy, tracer, "")
}

// NewCorbaSinkData is NewCorbaSink with an explicit data-plane listen
// address. Scheme URIs select the data transport ("shm://" puts the
// deposit path on a shared-memory ring); empty keeps the control
// transport's default.
func NewCorbaSinkData(tr transport.Transport, zeroCopy bool, tracer *trace.Tracer,
	dataAddr string) (*CorbaSink, error) {
	return NewCorbaSinkConfig(SinkConfig{
		Transport: tr, ZeroCopy: zeroCopy, Tracer: tracer, DataAddr: dataAddr,
	})
}

// SinkConfig configures a CORBA sink beyond the transport/ZC pair: the
// server-side connection engine and its admission-control knobs, which
// cmd/ttcp exposes as flags for connection-scale runs.
type SinkConfig struct {
	Transport transport.Transport
	ZeroCopy  bool
	Tracer    *trace.Tracer
	// DataAddr is the data-plane listen address (see NewCorbaSinkData).
	DataAddr string
	// Engine parks inbound connections in the epoll-driven event tier
	// (orb.Options.Engine); ignored off Linux.
	Engine bool
	// MaxInFlight caps concurrently dispatching requests; excess is
	// shed with TRANSIENT (orb.Options.MaxInFlight). 0 = unlimited.
	MaxInFlight int
	// Dispatchers sizes the engine's worker pool
	// (orb.Options.EngineDispatchers). 0 = default.
	Dispatchers int
	// MaxConns pauses the accept loop above this many live inbound
	// connections (orb.Options.MaxConns). 0 = unlimited.
	MaxConns int
	// GatherSegs additionally serves a gather sink — a zputv operation
	// taking this many ZC octet-stream segments per request — whose IOR
	// lands in CorbaSink.GatherIOR. 0 disables it.
	GatherSegs int
}

// NewCorbaSinkConfig starts a sink ORB from the full configuration.
func NewCorbaSinkConfig(cfg SinkConfig) (*CorbaSink, error) {
	o, err := orb.New(orb.Options{
		Transport: cfg.Transport, ZeroCopy: cfg.ZeroCopy, Tracer: cfg.Tracer,
		DataListenAddr:    cfg.DataAddr,
		Engine:            cfg.Engine,
		MaxInFlight:       cfg.MaxInFlight,
		EngineDispatchers: cfg.Dispatchers,
		MaxConns:          cfg.MaxConns,
	})
	if err != nil {
		return nil, fmt.Errorf("ttcp: sink ORB: %w", err)
	}
	ref, err := o.Activate("ttcp-sink", media.Media_StoreSkeleton{Impl: &sinkServant{}})
	if err != nil {
		o.Shutdown()
		return nil, fmt.Errorf("ttcp: activate sink: %w", err)
	}
	s := &CorbaSink{ORB: o, IOR: ref.String()}
	if cfg.GatherSegs > 0 {
		gref, err := o.Activate("ttcp-gather-sink",
			&gatherSinkServant{iface: GatherStoreIface(cfg.GatherSegs)})
		if err != nil {
			o.Shutdown()
			return nil, fmt.Errorf("ttcp: activate gather sink: %w", err)
		}
		s.GatherIOR = gref.String()
	}
	return s, nil
}

// Close shuts the sink ORB down.
func (s *CorbaSink) Close() { s.ORB.Shutdown() }

// CorbaSend transmits blocks through the Store stub, one request per
// round trip. With zeroCopy the zput operation (sequence<ZC_Octet>,
// direct deposit) is used; otherwise put (standard marshaling).
func CorbaSend(client *orb.ORB, iorStr string, blockSize, blocks int, zeroCopy bool) (Result, error) {
	return CorbaSendWindow(client, iorStr, blockSize, blocks, 1, zeroCopy)
}

// CorbaSendWindow transmits blocks through the Store interface with up
// to window requests in flight, so small-block transfers are no longer
// bounded by one round trip per block. Replies are verified in order;
// window 1 degenerates to the synchronous CorbaSend.
func CorbaSendWindow(client *orb.ORB, iorStr string, blockSize, blocks, window int, zeroCopy bool) (Result, error) {
	mode := ModeCorba
	if zeroCopy {
		mode = ModeZCCorba
	}
	return CorbaSendWindowMode(client, iorStr, blockSize, blocks, window, zeroCopy, mode)
}

// CorbaSendWindowMode is CorbaSendWindow with an explicit result-mode
// label (runs over the shared-memory data plane report as
// ModeShmCorba; the wire protocol is identical).
func CorbaSendWindowMode(client *orb.ORB, iorStr string, blockSize, blocks, window int,
	zeroCopy bool, mode Mode) (Result, error) {
	if window < 1 {
		window = 1
	}
	res := Result{Mode: mode, Stack: "orb", BlockSize: blockSize, Blocks: blocks, Window: window}
	ref, err := client.StringToObject(iorStr)
	if err != nil {
		return res, err
	}
	opName := "put"
	if zeroCopy {
		opName = "zput"
	}
	op := media.Media_StoreIface.Ops[opName]

	var pool zcbuf.Pool
	buf, err := pool.Get(blockSize)
	if err != nil {
		return res, err
	}
	defer buf.Release()
	payload := buf.Bytes()
	for i := range payload {
		payload[i] = byte(i)
	}
	args := []any{any(payload)}
	if zeroCopy {
		// The pipelined sends reuse one buffer: each request's payload
		// is fully written to the data channel before Submit returns.
		args[0] = buf
	}

	var ackErr error
	check := func(result any, _ []any, err error) {
		if ackErr != nil {
			return
		}
		if err != nil {
			ackErr = err
			return
		}
		n, _ := result.(uint32)
		if int(n) != blockSize {
			ackErr = fmt.Errorf("acknowledged %d of %d bytes", n, blockSize)
		}
	}

	p := ref.Pipeline(op, window)
	start := time.Now()
	for i := 0; i < blocks; i++ {
		if err := p.Submit(args, check); err != nil {
			return res, fmt.Errorf("ttcp: block %d: %w", i, err)
		}
		if ackErr != nil {
			return res, fmt.Errorf("ttcp: block %d: %w", i, ackErr)
		}
	}
	if err := p.Flush(); err != nil {
		return res, fmt.Errorf("ttcp: flush: %w", err)
	}
	if ackErr != nil {
		return res, fmt.Errorf("ttcp: %w", ackErr)
	}
	res.Elapsed = time.Since(start)
	res.Bytes = int64(blockSize) * int64(blocks)
	return res, nil
}

// ---------------------------------------------------------------------------
// Gathered-deposit variant

// GatherStoreIface returns the runtime contract of the gather sink: a
// single zputv operation carrying segs ZC octet-stream parameters, so
// one request scatters segs blocks on the receive side.
func GatherStoreIface(segs int) *orb.Interface {
	params := make([]orb.Param, segs)
	for i := range params {
		params[i] = orb.Param{Name: fmt.Sprintf("d%d", i),
			Type: typecode.TCZCOctetSeq, Dir: orb.In}
	}
	return orb.NewInterface(
		fmt.Sprintf("IDL:zcorba/Media/GatherStore%d:1.0", segs), "GatherStore",
		&orb.Operation{Name: "zputv", Idempotent: true, Params: params,
			Result: typecode.TCULong})
}

// gatherSinkServant acknowledges zputv trains with the total byte
// count, like sinkServant does for single blocks.
type gatherSinkServant struct {
	iface    *orb.Interface
	received atomic.Uint64
}

func (g *gatherSinkServant) Interface() *orb.Interface { return g.iface }

func (g *gatherSinkServant) Invoke(op string, args []any) (any, []any, error) {
	if op != "zputv" {
		return nil, nil, &orb.SystemException{Name: "BAD_OPERATION"}
	}
	var n uint32
	for _, a := range args {
		b, ok := a.(*zcbuf.Buffer)
		if !ok {
			return nil, nil, &orb.SystemException{Name: "BAD_PARAM"}
		}
		n += uint32(b.Len())
	}
	g.received.Add(uint64(n))
	return n, nil, nil
}

// CorbaSendGather transmits trains of segs registered buffers through
// the gather sink: each train is one SendBuffers invocation (a single
// vectored write carries all segs blocks), with up to window trains in
// flight. A train's buffers are reused only after its per-buffer
// completion callbacks report them safe, so the registered set cycles
// without copies. Blocks in the result counts blocks (trains × segs).
func CorbaSendGather(client *orb.ORB, iorStr string, blockSize, trains, segs, window int) (Result, error) {
	if segs < 1 {
		segs = 1
	}
	if window < 1 {
		window = 1
	}
	if trains < 1 {
		trains = 1
	}
	if window > trains {
		window = trains
	}
	res := Result{Mode: ModeGatherCorba, Stack: "orb",
		BlockSize: blockSize, Blocks: trains * segs, Window: window}
	ref, err := client.StringToObject(iorStr)
	if err != nil {
		return res, err
	}
	op := GatherStoreIface(segs).Ops["zputv"]
	want := uint32(blockSize) * uint32(segs)

	// One registered buffer set per window slot; a slot is reused only
	// after its previous train's reply AND completions arrive.
	type slot struct {
		bufs []*zcbuf.Buffer
		regs []*zcbuf.Registration
		call *orb.Call
		free chan struct{} // one token per completed buffer
	}
	var pool zcbuf.Pool
	slots := make([]*slot, window)
	defer func() {
		for _, s := range slots {
			if s == nil {
				continue
			}
			for _, r := range s.regs {
				r.Close()
			}
			for _, b := range s.bufs {
				b.Release()
			}
		}
	}()
	for k := range slots {
		s := &slot{free: make(chan struct{}, segs)}
		for i := 0; i < segs; i++ {
			b, err := pool.Get(blockSize)
			if err != nil {
				return res, err
			}
			p := b.Bytes()
			for j := range p {
				p[j] = byte(j)
			}
			s.bufs = append(s.bufs, b)
			r, err := zcbuf.Register(b)
			if err != nil {
				b.Release()
				s.bufs = s.bufs[:len(s.bufs)-1]
				return res, err
			}
			s.regs = append(s.regs, r)
		}
		slots[k] = s
	}

	reap := func(s *slot) error {
		r, _, err := s.call.Wait()
		s.call = nil
		if err != nil {
			return err
		}
		if n, _ := r.(uint32); n != want {
			return fmt.Errorf("acknowledged %d of %d bytes", n, want)
		}
		for i := 0; i < segs; i++ {
			<-s.free
		}
		return nil
	}

	ctx := context.Background()
	start := time.Now()
	for t := 0; t < trains; t++ {
		s := slots[t%window]
		if s.call != nil {
			if err := reap(s); err != nil {
				return res, fmt.Errorf("ttcp: train %d: %w", t-window, err)
			}
		}
		call, err := ref.SendBuffers(ctx, op, s.bufs,
			func(int, error) { s.free <- struct{}{} })
		if err != nil {
			return res, fmt.Errorf("ttcp: train %d: %w", t, err)
		}
		s.call = call
	}
	for k := 0; k < window; k++ {
		s := slots[(trains+k)%window]
		if s.call == nil {
			continue
		}
		if err := reap(s); err != nil {
			return res, fmt.Errorf("ttcp: drain: %w", err)
		}
	}
	res.Elapsed = time.Since(start)
	res.Bytes = int64(blockSize) * int64(segs) * int64(trains)
	return res, nil
}

// BlocksFor picks a block count that keeps total transfer near
// targetBytes, with at least minBlocks rounds, so small and large
// blocks get comparable measurement windows.
func BlocksFor(blockSize int, targetBytes int64, minBlocks int) int {
	b := int(targetBytes / int64(blockSize))
	if b < minBlocks {
		return minBlocks
	}
	return b
}

// PaperSweep returns the paper's block-size sweep: 4 KiB to 16 MiB in
// powers of two (the buffers grow in 4 KiB page increments; powers of
// two are the points Figures 5/6 plot).
func PaperSweep() []int {
	var sizes []int
	for s := 4 << 10; s <= 16<<20; s <<= 1 {
		sizes = append(sizes, s)
	}
	return sizes
}
