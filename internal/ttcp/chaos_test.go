package ttcp

import (
	"testing"

	"zcorba/internal/orb"
	"zcorba/internal/transport"
)

// TestCorbaSendSurvivesDataReset runs the pipelined ZC sender with a
// deterministic mid-stream deposit reset: the benchmark must complete
// via the retry/fallback machinery rather than abort.
func TestCorbaSendSurvivesDataReset(t *testing.T) {
	sink, err := NewCorbaSink(&transport.TCP{}, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	inj := transport.NewFaultInjector(9).Add(transport.Rule{
		Op: transport.OpWrite, Class: transport.ClassData,
		Kind: transport.FaultReset, Nth: 3,
	})
	client, err := orb.New(orb.Options{
		Transport: &transport.Faulty{Inner: &transport.TCP{}, Inj: inj},
		ZeroCopy:  true,
		Retry:     ChaosRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Shutdown()

	res, err := CorbaSendWindow(client, sink.IOR, 32<<10, 32, 4, true)
	if err != nil {
		t.Fatalf("send under data reset: %v", err)
	}
	if res.Bytes != int64(32<<10)*32 {
		t.Fatalf("transferred %d bytes", res.Bytes)
	}
	if inj.Fired() < 1 {
		t.Fatal("fault never fired")
	}
	st := client.Stats()
	if st.DataChanFallbacks.Load()+st.Retries.Load() < 1 {
		t.Fatal("no fallback or retry recorded")
	}
}

// TestChaosWrapperCompletes is a smoke test for the -chaos flag's
// helper: a short windowed run under the default schedule finishes.
func TestChaosWrapperCompletes(t *testing.T) {
	sink, err := NewCorbaSink(&transport.TCP{}, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	tr, inj := Chaos(&transport.TCP{}, 42)
	client, err := orb.New(orb.Options{Transport: tr, ZeroCopy: true, Retry: ChaosRetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Shutdown()
	if _, err := CorbaSendWindow(client, sink.IOR, 16<<10, 64, 4, true); err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	t.Logf("chaos smoke: %d faults fired", inj.Fired())
}
