package trace

import (
	"bufio"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

// Exporter serves the observability surface over HTTP on an opt-in
// debug listener:
//
//	/metrics     Prometheus text format: the tracer's histograms,
//	             span-kind counters, and any registered counters
//	/spans       the retained span slab as a replayable span log
//	/debug/vars  expvar (includes memstats)
//	/debug/pprof the standard pprof handlers
//
// Counters are registered as pull functions, so the exporter reads
// live atomics at scrape time and the instrumented code never pushes.
type Exporter struct {
	// Tracer supplies histograms and spans; may be nil (counters only).
	Tracer *Tracer
	// Namespace prefixes every metric name; default "zcorba".
	Namespace string

	mu       sync.Mutex
	counters []promCounter
	srv      *http.Server
	lis      net.Listener
}

type promCounter struct {
	name, help string
	fn         func() int64
	gauge      bool
}

// AddCounter registers a pull-style counter exported as
// <namespace>_<name>. fn is called at scrape time.
func (x *Exporter) AddCounter(name, help string, fn func() int64) {
	x.mu.Lock()
	x.counters = append(x.counters, promCounter{name: name, help: help, fn: fn})
	x.mu.Unlock()
}

// AddGauge registers a pull-style gauge (a level that can go down —
// connection counts, queue depths) exported as <namespace>_<name>.
func (x *Exporter) AddGauge(name, help string, fn func() int64) {
	x.mu.Lock()
	x.counters = append(x.counters, promCounter{name: name, help: help, fn: fn, gauge: true})
	x.mu.Unlock()
}

func (x *Exporter) ns() string {
	if x.Namespace == "" {
		return "zcorba"
	}
	return x.Namespace
}

// Handler returns the exporter's mux (for embedding into an existing
// server).
func (x *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", x.serveMetrics)
	mux.HandleFunc("/spans", x.serveSpans)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr and serves the debug surface until Close. It
// returns the bound address (useful with ":0").
func (x *Exporter) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("trace: debug listener: %w", err)
	}
	srv := &http.Server{Handler: x.Handler()}
	x.mu.Lock()
	x.lis, x.srv = lis, srv
	x.mu.Unlock()
	go func() { _ = srv.Serve(lis) }()
	return lis.Addr().String(), nil
}

// Close stops the debug listener.
func (x *Exporter) Close() error {
	x.mu.Lock()
	srv := x.srv
	x.srv, x.lis = nil, nil
	x.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (x *Exporter) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = x.WriteProm(w)
}

func (x *Exporter) serveSpans(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = WriteSpanLog(w, x.Tracer.Spans())
}

// WriteProm emits every metric in Prometheus text exposition format.
func (x *Exporter) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	ns := x.ns()

	x.mu.Lock()
	counters := append([]promCounter(nil), x.counters...)
	x.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	for _, c := range counters {
		typ := "counter"
		if c.gauge {
			typ = "gauge"
		}
		fmt.Fprintf(bw, "# HELP %s_%s %s\n", ns, c.name, c.help)
		fmt.Fprintf(bw, "# TYPE %s_%s %s\n", ns, c.name, typ)
		fmt.Fprintf(bw, "%s_%s %d\n", ns, c.name, c.fn())
	}

	if t := x.Tracer; t != nil {
		fmt.Fprintf(bw, "# HELP %s_spans_total Spans recorded, by kind.\n", ns)
		fmt.Fprintf(bw, "# TYPE %s_spans_total counter\n", ns)
		for k := Kind(0); k < numKinds; k++ {
			fmt.Fprintf(bw, "%s_spans_total{kind=%q} %d\n", ns, k.String(), t.SpanCount(k))
		}
		writePromHist(bw, ns+"_invoke_latency_ns",
			"Whole-invocation client latency (ns).", t.InvokeLatencyNS.Snapshot())
		writePromHist(bw, ns+"_dispatch_latency_ns",
			"Server-side servant execution time (ns).", t.DispatchLatencyNS.Snapshot())
		writePromHist(bw, ns+"_deposit_bytes",
			"Direct-deposit transfer sizes (bytes).", t.DepositBytes.Snapshot())
		writePromHist(bw, ns+"_retry_backoff_ns",
			"Backoff pauses before retries (ns).", t.RetryBackoffNS.Snapshot())
		writePromHist(bw, ns+"_frame_latency_ns",
			"Farm frame round-trip latency (ns).", t.FrameLatencyNS.Snapshot())
		writePromHist(bw, ns+"_completion_latency_ns",
			"Gathered-deposit per-buffer completion latency (ns).",
			t.CompletionLatencyNS.Snapshot())
	}
	return bw.Flush()
}

// writePromHist renders one histogram: cumulative buckets up to the
// highest occupied octave, then +Inf, _sum and _count.
func writePromHist(w io.Writer, name, help string, s HistSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	top := 0
	for i, c := range s.Counts {
		if c > 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketUpper(i), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "%s_sum %d\n", name, s.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

// spanJSON is the span-log wire form: one JSON object per line, hex
// IDs so logs from both sides of a connection correlate by eye.
type spanJSON struct {
	Trace   string `json:"trace"`
	Span    string `json:"span"`
	Parent  string `json:"parent,omitempty"`
	Kind    string `json:"kind"`
	Op      string `json:"op,omitempty"`
	Start   int64  `json:"start_ns"`
	Dur     int64  `json:"dur_ns"`
	Bytes   int64  `json:"bytes,omitempty"`
	Attempt uint16 `json:"attempt,omitempty"`
	Err     bool   `json:"err,omitempty"`
}

// WriteSpanLog writes spans as newline-delimited JSON — the replayable
// span log format dumped by `ttcp -trace` and served on /spans.
// ReadSpanLog inverts it losslessly.
func WriteSpanLog(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		j := spanJSON{
			Trace: fmt.Sprintf("%016x", uint64(s.Trace)),
			Span:  fmt.Sprintf("%016x", uint64(s.Span)),
			Kind:  s.Kind.String(),
			Op:    s.Op, Start: s.Start, Dur: s.Dur,
			Bytes: s.Bytes, Attempt: s.Attempt, Err: s.Err,
		}
		if s.Parent != 0 {
			j.Parent = fmt.Sprintf("%016x", uint64(s.Parent))
		}
		if err := enc.Encode(&j); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpanLog parses a span log produced by WriteSpanLog.
func ReadSpanLog(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for dec.More() {
		var j spanJSON
		if err := dec.Decode(&j); err != nil {
			return out, fmt.Errorf("trace: span log: %w", err)
		}
		kind, ok := KindFromString(j.Kind)
		if !ok {
			return out, fmt.Errorf("trace: span log: unknown kind %q", j.Kind)
		}
		s := Span{
			Kind: kind, Op: j.Op, Start: j.Start, Dur: j.Dur,
			Bytes: j.Bytes, Attempt: j.Attempt, Err: j.Err,
		}
		if _, err := fmt.Sscanf(j.Trace, "%x", (*uint64)(&s.Trace)); err != nil {
			return out, fmt.Errorf("trace: span log: trace id %q", j.Trace)
		}
		if _, err := fmt.Sscanf(j.Span, "%x", (*uint64)(&s.Span)); err != nil {
			return out, fmt.Errorf("trace: span log: span id %q", j.Span)
		}
		if j.Parent != "" {
			if _, err := fmt.Sscanf(j.Parent, "%x", (*uint64)(&s.Parent)); err != nil {
				return out, fmt.Errorf("trace: span log: parent id %q", j.Parent)
			}
		}
		out = append(out, s)
	}
	return out, nil
}
