package trace

import (
	"sync"
	"testing"
)

// TestNilTracer locks the nil-is-disabled contract every ORB call site
// depends on: no method of a nil *Tracer panics or reports activity.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	if tr.NewID() != 0 {
		t.Fatal("nil tracer minted an ID")
	}
	if tr.NewTrace().Valid() {
		t.Fatal("nil tracer minted a context")
	}
	tr.Record(Span{Trace: 1, Kind: KindInvoke})
	tr.Reset()
	if tr.Spans() != nil || tr.TotalSpans() != 0 || tr.SpanCount(KindInvoke) != 0 {
		t.Fatal("nil tracer retained spans")
	}
}

func TestNewIDNeverZero(t *testing.T) {
	tr := New(8)
	seen := map[ID]bool{}
	for i := 0; i < 1000; i++ {
		id := tr.NewID()
		if id == 0 {
			t.Fatal("zero ID")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
}

func TestRecordAssignsSpanID(t *testing.T) {
	tr := New(8)
	tr.Record(Span{Trace: 1, Kind: KindMarshal})
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Span == 0 {
		t.Fatalf("spans %+v", spans)
	}
	// An invalid (zero-trace) span is dropped entirely.
	tr.Record(Span{Kind: KindMarshal})
	if tr.TotalSpans() != 1 {
		t.Fatalf("invalid span was recorded: total %d", tr.TotalSpans())
	}
}

// TestRingWrap fills a 4-slot slab with 10 spans and asserts the
// retained window is the newest 4, oldest first, while totals count all
// 10.
func TestRingWrap(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Trace: 1, Span: ID(i + 1), Kind: KindInvoke, Start: int64(i)})
	}
	if tr.TotalSpans() != 10 {
		t.Fatalf("total %d", tr.TotalSpans())
	}
	if tr.SpanCount(KindInvoke) != 10 {
		t.Fatalf("kind count %d", tr.SpanCount(KindInvoke))
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans", len(spans))
	}
	for i, s := range spans {
		if want := int64(6 + i); s.Start != want {
			t.Fatalf("span %d has start %d, want %d (oldest first)", i, s.Start, want)
		}
	}
}

func TestReset(t *testing.T) {
	tr := New(4)
	tr.Record(Span{Trace: 1, Kind: KindRetry})
	tr.InvokeLatencyNS.Record(5)
	tr.Reset()
	if tr.TotalSpans() != 0 || len(tr.Spans()) != 0 || tr.SpanCount(KindRetry) != 0 {
		t.Fatal("reset left spans behind")
	}
	if tr.InvokeLatencyNS.Count() != 0 || tr.InvokeLatencyNS.Sum() != 0 {
		t.Fatal("reset left histogram state behind")
	}
	// The tracer keeps working after a reset.
	tr.Record(Span{Trace: 1, Kind: KindRetry})
	if tr.TotalSpans() != 1 {
		t.Fatal("tracer dead after reset")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		back, ok := KindFromString(k.String())
		if !ok || back != k {
			t.Fatalf("kind %d round trip via %q failed", k, k.String())
		}
	}
	if _, ok := KindFromString("nonsense"); ok {
		t.Fatal("unknown kind name accepted")
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Fatalf("out-of-range kind name %q", got)
	}
}

// TestRecordConcurrent records from many goroutines into a small slab;
// under -race this is the recorder's data-race check, and the per-kind
// totals must be exact.
func TestRecordConcurrent(t *testing.T) {
	const workers, per = 8, 2000
	tr := New(16)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Record(Span{Trace: tr.NewID(), Kind: KindDepositSend})
			}
		}()
	}
	wg.Wait()
	if tr.TotalSpans() != workers*per {
		t.Fatalf("total %d, want %d", tr.TotalSpans(), workers*per)
	}
	if tr.SpanCount(KindDepositSend) != workers*per {
		t.Fatalf("kind count %d, want %d", tr.SpanCount(KindDepositSend), workers*per)
	}
	if got := len(tr.Spans()); got != 16 {
		t.Fatalf("retained %d spans, want slab size 16", got)
	}
}
