package trace

import (
	"bytes"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

func sampleSpans() []Span {
	return []Span{
		{Trace: 0xA1, Span: 0xB1, Kind: KindInvoke, Op: "put",
			Start: 100, Dur: 50, Attempt: 1},
		{Trace: 0xA1, Span: 0xB2, Parent: 0xB1, Kind: KindDepositSend,
			Op: "put", Start: 110, Dur: 20, Bytes: 65536},
		{Trace: 0xA2, Span: 0xB3, Kind: KindRetry, Op: "get",
			Start: 200, Dur: 1000, Attempt: 2, Err: true},
	}
}

func TestSpanLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := sampleSpans()
	if err := WriteSpanLog(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpanLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("span log round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadSpanLogRejectsUnknownKind(t *testing.T) {
	in := `{"trace":"01","span":"02","kind":"warp_drive","start_ns":0,"dur_ns":0}` + "\n"
	if _, err := ReadSpanLog(strings.NewReader(in)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestWritePromFormat(t *testing.T) {
	tr := New(16)
	tr.Record(Span{Trace: 1, Kind: KindInvoke})
	tr.Record(Span{Trace: 1, Kind: KindInvoke})
	tr.Record(Span{Trace: 1, Kind: KindFallback, Err: true})
	tr.DepositBytes.Record(1000) // bucket 10, upper 1023
	x := &Exporter{Tracer: tr}
	x.AddCounter("requests_sent_total", "Requests sent.", func() int64 { return 42 })

	var buf bytes.Buffer
	if err := x.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE zcorba_requests_sent_total counter\n",
		"zcorba_requests_sent_total 42\n",
		`zcorba_spans_total{kind="invoke"} 2` + "\n",
		`zcorba_spans_total{kind="fallback"} 1` + "\n",
		"# TYPE zcorba_deposit_bytes histogram\n",
		`zcorba_deposit_bytes_bucket{le="1023"} 1` + "\n",
		`zcorba_deposit_bytes_bucket{le="+Inf"} 1` + "\n",
		"zcorba_deposit_bytes_sum 1000\n",
		"zcorba_deposit_bytes_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}

func TestWritePromNamespace(t *testing.T) {
	x := &Exporter{Namespace: "custom"}
	x.AddCounter("c_total", "h", func() int64 { return 1 })
	var buf bytes.Buffer
	if err := x.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "custom_c_total 1\n") {
		t.Fatalf("namespace not applied:\n%s", buf.String())
	}
}

// TestExporterHTTP exercises the full debug listener: bind :0, scrape
// /metrics and /spans over real HTTP, then Close.
func TestExporterHTTP(t *testing.T) {
	tr := New(16)
	for _, s := range sampleSpans() {
		tr.Record(s)
	}
	x := &Exporter{Tracer: tr}
	x.AddCounter("up", "Always one.", func() int64 { return 1 })
	addr, err := x.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	if !strings.Contains(body, "zcorba_up 1\n") ||
		!strings.Contains(body, `zcorba_spans_total{kind="invoke"} 1`) {
		t.Fatalf("metrics body:\n%s", body)
	}

	body, ct = get("/spans")
	if ct != "application/x-ndjson" {
		t.Fatalf("spans content type %q", ct)
	}
	spans, err := ReadSpanLog(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spans, sampleSpans()) {
		t.Fatalf("served spans:\n got %+v\nwant %+v", spans, sampleSpans())
	}

	if body, _ = get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Fatal("expvar endpoint missing memstats")
	}

	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("listener still serving after Close")
	}
}
