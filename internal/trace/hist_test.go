package trace

import (
	"math"
	"sync"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketUpper(t *testing.T) {
	cases := []struct {
		i    int
		want int64
	}{
		{0, 0}, {1, 1}, {2, 3}, {3, 7}, {10, 1023},
		{63, math.MaxInt64}, {64, math.MaxInt64},
	}
	for _, c := range cases {
		if got := BucketUpper(c.i); got != c.want {
			t.Errorf("BucketUpper(%d) = %d, want %d", c.i, got, c.want)
		}
	}
	// Every representable value lands in a bucket whose upper bound
	// contains it.
	for _, v := range []int64{1, 2, 3, 100, 1 << 20, math.MaxInt64} {
		if up := BucketUpper(bucketOf(v)); up < v {
			t.Errorf("value %d above its bucket bound %d", v, up)
		}
	}
}

// TestQuantileDeterministic drives the histogram with a fixed synthetic
// distribution (the "fake clock": values are injected, never measured)
// and asserts exact percentile read-backs.
func TestQuantileDeterministic(t *testing.T) {
	var h Histogram
	// 900 fast observations at 10, 90 at 1000, 10 outliers at 100000.
	for i := 0; i < 900; i++ {
		h.Record(10)
	}
	for i := 0; i < 90; i++ {
		h.Record(1000)
	}
	for i := 0; i < 10; i++ {
		h.Record(100000)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Sum != 900*10+90*1000+10*100000 {
		t.Fatalf("sum %d", s.Sum)
	}
	// 10 → bucket 4 (upper 15), 1000 → bucket 10 (upper 1023),
	// 100000 → bucket 17 (upper 131071).
	cases := []struct {
		q    float64
		want int64
	}{
		{0.50, 15}, {0.90, 15}, {0.95, 1023}, {0.99, 1023}, {0.999, 131071}, {1.0, 131071},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if got := s.Mean(); got != 1099 {
		t.Errorf("Mean() = %v, want 1099", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s HistSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot: q50=%d mean=%v", s.Quantile(0.5), s.Mean())
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Record(8) // bucket 4
	}
	for i := 0; i < 10; i++ {
		b.Record(1 << 20) // bucket 21
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 20 || s.Sum != 10*8+10*(1<<20) {
		t.Fatalf("merged count %d sum %d", s.Count, s.Sum)
	}
	if got := s.Quantile(0.5); got != 15 {
		t.Fatalf("merged q50 = %d, want 15", got)
	}
	if got := s.Quantile(0.75); got != (1<<21)-1 {
		t.Fatalf("merged q75 = %d, want %d", got, (1<<21)-1)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// run under -race this doubles as the data-race check, and the final
// count and sum must be exact regardless of interleaving.
func TestHistogramConcurrent(t *testing.T) {
	const workers, per = 8, 10000
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(w + 1))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	wantSum := int64(0)
	for w := 1; w <= workers; w++ {
		wantSum += int64(w) * per
	}
	if h.Sum() != wantSum {
		t.Fatalf("sum %d, want %d", h.Sum(), wantSum)
	}
	s := h.Snapshot()
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != workers*per {
		t.Fatalf("bucket total %d, want %d", total, workers*per)
	}
}
