// Package trace provides per-invocation tracing and metrics for the
// split control/data path. Aggregate counters (orb.Stats) can say how
// many deposits happened; they cannot say where one request spent its
// time or whether its payload actually took the zero-copy path. A
// trace follows one logical invocation across both connections: the
// client mints a trace context, sends it in a GIOP ServiceContext on
// the control message, and both sides record spans — marshal, control
// send, deposit transfer, unmarshal, dispatch, reply — against the
// shared trace ID, including retry attempts and ZC→marshaled
// fallbacks.
//
// The recorder is built for the allocation-free hot path of
// docs/PERF.md: spans land in a pre-allocated slab (a ring), so
// recording is a short critical section with zero heap allocation, and
// the latency/size histograms are lock-free atomics. Export happens
// out of band through the Exporter (Prometheus text, expvar, pprof)
// and through replayable span logs (WriteSpanLog / ReadSpanLog).
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ID names a trace or a span within it. Zero is "absent".
type ID uint64

// Context identifies one node of an in-flight trace: the trace it
// belongs to and the span that is its parent on the wire. The zero
// Context means "tracing disabled" and is what every untraced code
// path carries.
type Context struct {
	Trace ID
	Span  ID
}

// Valid reports whether the context belongs to a live trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// Kind classifies a span within the invocation taxonomy (see
// docs/OBSERVABILITY.md for the full model).
type Kind uint8

// Span kinds. Client-side: Invoke (the whole logical call, retries
// included), Marshal, ControlSend, DepositSend, Unmarshal (reply
// decode). Server-side: DepositRecv, Unmarshal (request decode),
// Dispatch (servant execution), ReplySend. Cross-cutting: Retry (one
// backoff+resend decision), Fallback (a ZC→marshaled degrade or an
// aborted deposit), Lease (deposit-buffer lease lifecycle), Frame (one
// farm work item).
const (
	KindInvoke Kind = iota
	KindMarshal
	KindControlSend
	KindDepositSend
	KindDepositRecv
	KindUnmarshal
	KindDispatch
	KindReplySend
	KindRetry
	KindFallback
	KindLease
	KindFrame
	// KindShmDeposit covers one payload deposit into a shared-memory
	// ring; KindShmClaim the matching zero-copy claim on the receiver.
	KindShmDeposit
	KindShmClaim
	// KindKzcDeposit covers one deposit transfer that used a
	// kernel-assist path (MSG_ZEROCOPY or sendfile).
	KindKzcDeposit
	// KindShed marks one request rejected by server admission control
	// (TRANSIENT shed) instead of being dispatched.
	KindShed
	// KindFailover marks one client-side profile switch: the retry
	// path abandoned the current IIOP profile and re-pinned the
	// reference to the next one in dial order (docs/NAMING.md).
	KindFailover
	// KindGatherSend covers one multi-segment deposit train (two or
	// more payload blocks coalesced into a single data-plane batch by
	// orb.SendBuffers or a multi-ZC-param invoke).
	KindGatherSend
	numKinds
)

var kindNames = [numKinds]string{
	"invoke", "marshal", "control_send", "deposit_send", "deposit_recv",
	"unmarshal", "dispatch", "reply_send", "retry", "fallback", "lease",
	"frame", "shm.deposit", "shm.claim", "kzc.deposit", "shed", "failover",
	"gather_send",
}

// String returns the span kind's wire/log name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString inverts String (used by the span-log reader).
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Span is one recorded event: a timed section of an invocation, or an
// instantaneous event (Dur 0). Spans are plain values sized for slab
// storage; Op aliases an existing operation-name string, so recording
// one never allocates.
type Span struct {
	Trace  ID
	Span   ID
	Parent ID
	Kind   Kind
	// Err marks the section as failed.
	Err bool
	// Attempt is the 1-based retry attempt the span belongs to.
	Attempt uint16
	// Op is the operation (or event) name.
	Op string
	// Start is the wall-clock start in nanoseconds since the epoch.
	Start int64
	// Dur is the section length in nanoseconds (0 for point events).
	Dur int64
	// Bytes is the payload size the section moved, when meaningful.
	Bytes int64
}

// Tracer records spans into a fixed-size slab and maintains the
// standard histogram set. A nil *Tracer is a valid "disabled" tracer:
// every method is a cheap no-op, so call sites need no double guard.
//
// The slab is a ring: when full, new spans overwrite the oldest. Total
// recorded counts per kind survive the wrap (SpanCount), so tests and
// the stats gate can assert exact span production even if the slab is
// small.
type Tracer struct {
	idSeq  atomic.Uint64
	idBase uint64

	mu    sync.Mutex
	slab  []Span
	total uint64 // spans ever recorded; slab[ (total-1) % len ] is newest

	kindCounts [numKinds]atomic.Int64

	// InvokeLatencyNS observes whole-invocation client latency.
	InvokeLatencyNS Histogram
	// DispatchLatencyNS observes server-side servant execution time.
	DispatchLatencyNS Histogram
	// DepositBytes observes direct-deposit transfer sizes (both
	// directions, both sides).
	DepositBytes Histogram
	// RetryBackoffNS observes the backoff pauses taken before retries.
	RetryBackoffNS Histogram
	// FrameLatencyNS observes farm frame round trips.
	FrameLatencyNS Histogram
	// CompletionLatencyNS observes the delay between handing a
	// registered buffer to SendBuffers and its per-buffer completion
	// callback firing (the buffer-reuse window).
	CompletionLatencyNS Histogram
}

// DefaultSlabSpans is the slab capacity used by New when cap <= 0.
const DefaultSlabSpans = 4096

// New returns a Tracer whose slab holds cap spans (DefaultSlabSpans
// when cap <= 0). The slab is allocated up front; recording never
// grows it.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSlabSpans
	}
	t := &Tracer{slab: make([]Span, 0, capacity)}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		t.idBase = binary.BigEndian.Uint64(seed[:])
	} else {
		t.idBase = uint64(time.Now().UnixNano())
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// NewID mints a process-unique span/trace ID (never zero).
func (t *Tracer) NewID() ID {
	if t == nil {
		return 0
	}
	id := ID(t.idBase + t.idSeq.Add(1))
	if id == 0 {
		id = ID(t.idBase + t.idSeq.Add(1))
	}
	return id
}

// NewTrace mints a root context for one logical invocation: a fresh
// trace ID whose root span ID doubles as the parent of the wire-level
// spans on both sides.
func (t *Tracer) NewTrace() Context {
	if t == nil {
		return Context{}
	}
	return Context{Trace: t.NewID(), Span: t.NewID()}
}

// Record stores s in the slab. When s.Span is zero a fresh span ID is
// assigned. Nil-safe and allocation-free; the critical section is a
// slab-slot copy.
func (t *Tracer) Record(s Span) {
	if t == nil || !s.Valid() {
		return
	}
	if s.Span == 0 {
		s.Span = t.NewID()
	}
	t.kindCounts[s.Kind].Add(1)
	t.mu.Lock()
	if len(t.slab) < cap(t.slab) {
		t.slab = append(t.slab, s)
	} else {
		t.slab[t.total%uint64(cap(t.slab))] = s
	}
	t.total++
	t.mu.Unlock()
}

// Valid reports whether the span belongs to a live trace.
func (s Span) Valid() bool { return s.Trace != 0 }

// SpanCount returns the total number of spans of kind k ever recorded
// (not bounded by the slab size).
func (t *Tracer) SpanCount(k Kind) int64 {
	if t == nil {
		return 0
	}
	return t.kindCounts[k].Load()
}

// TotalSpans returns the total number of spans ever recorded.
func (t *Tracer) TotalSpans() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(t.total)
}

// Spans returns a copy of the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.slab))
	if t.total > uint64(len(t.slab)) {
		// Wrapped: the oldest retained span sits at the write cursor.
		at := t.total % uint64(cap(t.slab))
		out = append(out, t.slab[at:]...)
		out = append(out, t.slab[:at]...)
	} else {
		out = append(out, t.slab...)
	}
	return out
}

// Reset drops retained spans and zeroes every histogram and counter
// (tests and long-lived daemons that rotate span logs).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slab = t.slab[:0]
	t.total = 0
	t.mu.Unlock()
	for i := range t.kindCounts {
		t.kindCounts[i].Store(0)
	}
	for _, h := range []*Histogram{
		&t.InvokeLatencyNS, &t.DispatchLatencyNS, &t.DepositBytes,
		&t.RetryBackoffNS, &t.FrameLatencyNS, &t.CompletionLatencyNS,
	} {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.n.Store(0)
	}
}

// Now returns the current time in epoch nanoseconds. Centralized so
// call sites stay terse; the recorder itself never reads the clock.
func Now() int64 { return time.Now().UnixNano() }
