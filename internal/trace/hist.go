package trace

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a lock-free log-scale histogram: 65 power-of-two
// buckets (bucket i holds values v with bits.Len64(v) == i, i.e.
// 2^(i-1) <= v < 2^i; bucket 0 holds zero) recorded with atomic adds,
// so the invoke hot path never takes a lock and never allocates.
//
// Resolution is one octave, which is exactly what the latency and size
// distributions here need: the interesting question is "did p99 move a
// power of two", not "did it move 3%". Percentile reads are served
// from an atomic Snapshot and are deterministic for a fixed input set,
// so tests can assert exact values.
//
// The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// histBuckets covers bits.Len64 of any uint64: 0..64.
const histBuckets = 65

// bucketOf maps a value to its bucket index. Negative values clamp to
// bucket 0 (they only arise from clock steps backwards).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpper returns the inclusive upper bound of bucket i
// (2^i - 1), saturating at MaxInt64 for the last buckets.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<i - 1
}

// Record adds one observation. Safe for any number of concurrent
// callers; never blocks, never allocates.
func (h *Histogram) Record(v int64) {
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of recorded observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Snapshot captures a point-in-time copy of the histogram. Concurrent
// Records may straddle the capture (the snapshot is not a single
// atomic cut), but every completed Record before the call is included.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.n.Load()
	return s
}

// HistSnapshot is an immutable copy of a Histogram's state.
type HistSnapshot struct {
	Counts [histBuckets]int64
	Sum    int64
	Count  int64
}

// Merge accumulates other into s (for combining per-ORB or per-worker
// histograms into one view).
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Sum += other.Sum
	s.Count += other.Count
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1) of the recorded values: the tightest
// power-of-two bound b such that at least ceil(q*count) observations
// are <= b. Returns 0 for an empty histogram.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(histBuckets - 1)
}

// Mean returns the arithmetic mean of the recorded values.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
