package cdr

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestAlignmentPaddingBigEndian(t *testing.T) {
	e := NewEncoder(BigEndian, 0)
	e.WriteOctet(0xAA)
	e.WriteULong(0x01020304) // needs 3 pad bytes
	want := []byte{0xAA, 0, 0, 0, 1, 2, 3, 4}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("got % x want % x", e.Bytes(), want)
	}
}

func TestAlignmentWithNonZeroBase(t *testing.T) {
	// A GIOP body starts at stream offset 12, which is 4-aligned but
	// not 8-aligned; a double written first must insert 4 pad bytes.
	e := NewEncoder(BigEndian, 12)
	e.WriteDouble(1.0)
	if len(e.Bytes()) != 4+8 {
		t.Fatalf("len=%d want 12", len(e.Bytes()))
	}
	d := NewDecoder(BigEndian, 12, e.Bytes())
	v, err := d.ReadDouble()
	if err != nil || v != 1.0 {
		t.Fatalf("got %v,%v", v, err)
	}
}

func TestLittleEndianULong(t *testing.T) {
	e := NewEncoder(LittleEndian, 0)
	e.WriteULong(0x01020304)
	want := []byte{4, 3, 2, 1}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("got % x want % x", e.Bytes(), want)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "x", "hello world", "with\x01binary"} {
		e := NewEncoder(BigEndian, 0)
		e.WriteString(s)
		d := NewDecoder(BigEndian, 0, e.Bytes())
		got, err := d.ReadString()
		if err != nil {
			t.Fatalf("ReadString(%q): %v", s, err)
		}
		if got != s {
			t.Fatalf("got %q want %q", got, s)
		}
		if d.Remaining() != 0 {
			t.Fatalf("leftover %d bytes", d.Remaining())
		}
	}
}

func TestStringMissingNUL(t *testing.T) {
	e := NewEncoder(BigEndian, 0)
	e.WriteULong(3)
	e.WriteRaw([]byte("abc")) // no NUL
	d := NewDecoder(BigEndian, 0, e.Bytes())
	if _, err := d.ReadString(); !errors.Is(err, ErrBadString) {
		t.Fatalf("want ErrBadString, got %v", err)
	}
}

func TestStringZeroLengthRejected(t *testing.T) {
	e := NewEncoder(BigEndian, 0)
	e.WriteULong(0)
	d := NewDecoder(BigEndian, 0, e.Bytes())
	if _, err := d.ReadString(); !errors.Is(err, ErrBadString) {
		t.Fatalf("want ErrBadString, got %v", err)
	}
}

func TestShortBufferErrors(t *testing.T) {
	d := NewDecoder(BigEndian, 0, []byte{1, 2})
	if _, err := d.ReadULong(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
	d = NewDecoder(BigEndian, 0, nil)
	if _, err := d.ReadOctet(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
}

func TestHostileSequenceLengthRejected(t *testing.T) {
	e := NewEncoder(BigEndian, 0)
	e.WriteULong(0xFFFFFFFF)
	d := NewDecoder(BigEndian, 0, e.Bytes())
	if _, err := d.ReadOctetSeq(); err == nil {
		t.Fatal("want error for hostile length")
	}
}

func TestEncapsulationRoundTrip(t *testing.T) {
	e := NewEncoder(BigEndian, 0)
	e.WriteOctet(0x7F) // disturb outer alignment
	e.WriteEncapsulation(LittleEndian, func(inner *Encoder) {
		inner.WriteULong(42)
		inner.WriteString("nested")
	})
	d := NewDecoder(BigEndian, 0, e.Bytes())
	if _, err := d.ReadOctet(); err != nil {
		t.Fatal(err)
	}
	inner, err := d.ReadEncapsulation()
	if err != nil {
		t.Fatal(err)
	}
	if inner.Order() != LittleEndian {
		t.Fatalf("inner order = %v", inner.Order())
	}
	v, err := inner.ReadULong()
	if err != nil || v != 42 {
		t.Fatalf("got %v,%v", v, err)
	}
	s, err := inner.ReadString()
	if err != nil || s != "nested" {
		t.Fatalf("got %q,%v", s, err)
	}
}

func TestEmptyEncapsulationRejected(t *testing.T) {
	e := NewEncoder(BigEndian, 0)
	e.WriteULong(0)
	d := NewDecoder(BigEndian, 0, e.Bytes())
	if _, err := d.ReadEncapsulation(); err == nil {
		t.Fatal("want error for empty encapsulation")
	}
}

func TestOctetSeqViewAliases(t *testing.T) {
	e := NewEncoder(BigEndian, 0)
	e.WriteOctetSeq([]byte{9, 8, 7})
	d := NewDecoder(BigEndian, 0, e.Bytes())
	v, err := d.ReadOctetSeqView()
	if err != nil {
		t.Fatal(err)
	}
	// The view must alias the decoder buffer (zero-copy contract).
	if &v[0] != &e.Bytes()[4] {
		t.Fatal("view does not alias the underlying buffer")
	}
}

func TestBooleanTolerantDecode(t *testing.T) {
	d := NewDecoder(BigEndian, 0, []byte{0, 1, 7})
	for i, want := range []bool{false, true, true} {
		got, err := d.ReadBoolean()
		if err != nil || got != want {
			t.Fatalf("value %d: got %v,%v want %v", i, got, err, want)
		}
	}
}

// roundTrip encodes a mixed record in the given order and base and
// checks it decodes identically. Used by the property tests below.
func roundTrip(order ByteOrder, base uint8, o byte, b bool, s16 int16, u32 uint32,
	i64 int64, f32 float32, f64 float64, str string, blob []byte) bool {
	e := NewEncoder(order, int(base))
	e.WriteOctet(o)
	e.WriteBoolean(b)
	e.WriteShort(s16)
	e.WriteULong(u32)
	e.WriteLongLong(i64)
	e.WriteFloat(f32)
	e.WriteDouble(f64)
	e.WriteString(str)
	e.WriteOctetSeq(blob)

	d := NewDecoder(order, int(base), e.Bytes())
	go2, err := d.ReadOctet()
	if err != nil || go2 != o {
		return false
	}
	gb, err := d.ReadBoolean()
	if err != nil || gb != b {
		return false
	}
	gs, err := d.ReadShort()
	if err != nil || gs != s16 {
		return false
	}
	gu, err := d.ReadULong()
	if err != nil || gu != u32 {
		return false
	}
	gi, err := d.ReadLongLong()
	if err != nil || gi != i64 {
		return false
	}
	gf, err := d.ReadFloat()
	if err != nil {
		return false
	}
	if gf != f32 && !(math.IsNaN(float64(gf)) && math.IsNaN(float64(f32))) {
		return false
	}
	gd, err := d.ReadDouble()
	if err != nil {
		return false
	}
	if gd != f64 && !(math.IsNaN(gd) && math.IsNaN(f64)) {
		return false
	}
	gstr, err := d.ReadString()
	if err != nil || gstr != str {
		return false
	}
	gblob, err := d.ReadOctetSeq()
	if err != nil || !bytes.Equal(gblob, blob) {
		return false
	}
	return d.Remaining() == 0
}

func TestPropertyRoundTripBigEndian(t *testing.T) {
	f := func(base uint8, o byte, b bool, s16 int16, u32 uint32, i64 int64,
		f32 float32, f64 float64, str string, blob []byte) bool {
		if bytes.ContainsRune([]byte(str), 0) {
			str = "sanitized" // CDR strings cannot contain NUL
		}
		return roundTrip(BigEndian, base, o, b, s16, u32, i64, f32, f64, str, blob)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRoundTripLittleEndian(t *testing.T) {
	f := func(base uint8, o byte, b bool, s16 int16, u32 uint32, i64 int64,
		f32 float32, f64 float64, str string, blob []byte) bool {
		if bytes.ContainsRune([]byte(str), 0) {
			str = "sanitized"
		}
		return roundTrip(LittleEndian, base, o, b, s16, u32, i64, f32, f64, str, blob)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The decoder must never panic on arbitrary input, only return errors.
func TestPropertyDecoderRobustness(t *testing.T) {
	f := func(order bool, input []byte) bool {
		ord := BigEndian
		if order {
			ord = LittleEndian
		}
		d := NewDecoder(ord, 0, input)
		_, _ = d.ReadString()
		_, _ = d.ReadULong()
		_, _ = d.ReadOctetSeq()
		_, _ = d.ReadEncapsulation()
		_, _ = d.ReadDouble()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAlignmentInvariant(t *testing.T) {
	// After WriteULong the offset is always 4-aligned; after
	// WriteULongLong it is 8-aligned, for any starting base.
	f := func(base uint16, pre []byte) bool {
		e := NewEncoder(BigEndian, int(base%64))
		e.WriteRaw(pre)
		e.WriteULong(1)
		if e.Offset()%4 != 0 {
			return false
		}
		e.WriteULongLong(1)
		return e.Offset()%8 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderAlignPastEnd(t *testing.T) {
	// One byte of input; aligning to 8 would step past the end.
	d := NewDecoder(BigEndian, 1, []byte{0xAA})
	if _, err := d.ReadDouble(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
}

func TestReadRaw(t *testing.T) {
	d := NewDecoder(BigEndian, 0, []byte{1, 2, 3})
	b, err := d.ReadRaw(2)
	if err != nil || len(b) != 2 || b[0] != 1 {
		t.Fatalf("%v %v", b, err)
	}
	if _, err := d.ReadRaw(5); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
	if _, err := d.ReadRaw(-1); err == nil {
		t.Fatal("want error for negative length")
	}
}

func TestOffsetsTrackBase(t *testing.T) {
	e := NewEncoder(BigEndian, 12)
	if e.Offset() != 12 {
		t.Fatalf("offset %d", e.Offset())
	}
	e.WriteULong(1)
	if e.Offset() != 16 || e.Len() != 4 {
		t.Fatalf("offset %d len %d", e.Offset(), e.Len())
	}
	d := NewDecoder(BigEndian, 12, e.Bytes())
	if d.Offset() != 12 || d.Remaining() != 4 || d.Pos() != 0 {
		t.Fatalf("decoder offsets %d %d %d", d.Offset(), d.Remaining(), d.Pos())
	}
}
