package cdr

import "testing"

func BenchmarkWriteULong(b *testing.B) {
	e := NewEncoder(NativeOrder, 0)
	for i := 0; i < b.N; i++ {
		if e.Len() > 1<<20 {
			e = NewEncoder(NativeOrder, 0)
		}
		e.WriteULong(uint32(i))
	}
}

func BenchmarkWriteOctetSeq64K(b *testing.B) {
	p := make([]byte, 64<<10)
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		e := NewEncoder(NativeOrder, 0)
		e.WriteOctetSeq(p)
	}
}

func BenchmarkReadOctetSeqView64K(b *testing.B) {
	e := NewEncoder(NativeOrder, 0)
	e.WriteOctetSeq(make([]byte, 64<<10))
	raw := e.Bytes()
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		d := NewDecoder(NativeOrder, 0, raw)
		if _, err := d.ReadOctetSeqView(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStringRoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEncoder(NativeOrder, 0)
		e.WriteString("IDL:zcorba/Media/Store:1.0")
		d := NewDecoder(NativeOrder, 0, e.Bytes())
		if _, err := d.ReadString(); err != nil {
			b.Fatal(err)
		}
	}
}
