// Bulk fast paths for fixed-layout primitive runs.
//
// The general interpreter (internal/typecode) and the compiled
// marshalers emitted by idlgen both funnel arrays and sequences of
// fixed-width primitives through these helpers: one alignment step,
// one bounds check, and then either a single copy (when the stream's
// byte order matches the host's — the homogeneous-platform case the
// paper's bypass exploits) or an unrolled byteswap loop (the
// heterogeneous fallback). Element alignment is preserved exactly as
// the per-element Write*/Read* calls would produce it: aligning the
// first element to its natural size aligns every subsequent element
// too, so the wire bytes are identical to the interpreted form.
package cdr

import (
	"encoding/binary"
	"unsafe"
)

// hostOrder is the byte order of this machine, detected once at init.
// Streams in hostOrder take the single-copy path; the other order pays
// a per-element swap.
var hostOrder = func() ByteOrder {
	x := uint16(0x0102)
	if *(*byte)(unsafe.Pointer(&x)) == 0x02 {
		return LittleEndian
	}
	return BigEndian
}()

// HostOrder reports the byte order of this machine.
func HostOrder() ByteOrder { return hostOrder }

// grow extends the encoder's buffer by n zeroed bytes and returns the
// slice covering them, so bulk writers fill in place instead of
// appending element by element.
func (e *Encoder) grow(n int) []byte {
	l := len(e.buf)
	if cap(e.buf)-l < n {
		nb := make([]byte, l, l+n+l/2)
		copy(nb, e.buf)
		e.buf = nb
	}
	e.buf = e.buf[: l+n : cap(e.buf)]
	return e.buf[l : l+n]
}

// WriteOctetRun appends raw octets with no count prefix (the elements
// of an octet array, or of a sequence whose count is already written).
func (e *Encoder) WriteOctetRun(p []byte) { e.buf = append(e.buf, p...) }

// ReadOctetRun consumes exactly n octets and returns a copy.
func (d *Decoder) ReadOctetRun(n int) ([]byte, error) {
	if n < 0 {
		return nil, ErrShortBuffer
	}
	if err := d.need(n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, d.buf[d.pos:])
	d.pos += n
	return out, nil
}

// asBytes views a primitive slice as its raw bytes (host layout).
func asBytes[T uint16 | uint32 | uint64 | int16 | int32 | int64 | float32 | float64](v []T) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*int(unsafe.Sizeof(v[0])))
}

// WriteUShortRun appends the elements of a []uint16 run, 2-aligned.
func (e *Encoder) WriteUShortRun(v []uint16) {
	if len(v) == 0 {
		return // a zero-length run writes nothing, not even padding
	}
	e.Align(2)
	if e.order == hostOrder {
		e.buf = append(e.buf, asBytes(v)...)
		return
	}
	b := e.grow(2 * len(v))
	if e.order == BigEndian {
		for i, x := range v {
			binary.BigEndian.PutUint16(b[2*i:], x)
		}
	} else {
		for i, x := range v {
			binary.LittleEndian.PutUint16(b[2*i:], x)
		}
	}
}

// WriteShortRun appends the elements of an []int16 run, 2-aligned.
func (e *Encoder) WriteShortRun(v []int16) {
	if len(v) == 0 {
		return
	}
	e.Align(2)
	if e.order == hostOrder {
		e.buf = append(e.buf, asBytes(v)...)
		return
	}
	b := e.grow(2 * len(v))
	if e.order == BigEndian {
		for i, x := range v {
			binary.BigEndian.PutUint16(b[2*i:], uint16(x))
		}
	} else {
		for i, x := range v {
			binary.LittleEndian.PutUint16(b[2*i:], uint16(x))
		}
	}
}

// WriteULongRun appends the elements of a []uint32 run, 4-aligned.
func (e *Encoder) WriteULongRun(v []uint32) {
	if len(v) == 0 {
		return
	}
	e.Align(4)
	if e.order == hostOrder {
		e.buf = append(e.buf, asBytes(v)...)
		return
	}
	b := e.grow(4 * len(v))
	if e.order == BigEndian {
		for i, x := range v {
			binary.BigEndian.PutUint32(b[4*i:], x)
		}
	} else {
		for i, x := range v {
			binary.LittleEndian.PutUint32(b[4*i:], x)
		}
	}
}

// WriteLongRun appends the elements of an []int32 run, 4-aligned.
func (e *Encoder) WriteLongRun(v []int32) {
	if len(v) == 0 {
		return
	}
	e.Align(4)
	if e.order == hostOrder {
		e.buf = append(e.buf, asBytes(v)...)
		return
	}
	b := e.grow(4 * len(v))
	if e.order == BigEndian {
		for i, x := range v {
			binary.BigEndian.PutUint32(b[4*i:], uint32(x))
		}
	} else {
		for i, x := range v {
			binary.LittleEndian.PutUint32(b[4*i:], uint32(x))
		}
	}
}

// WriteULongLongRun appends the elements of a []uint64 run, 8-aligned.
func (e *Encoder) WriteULongLongRun(v []uint64) {
	if len(v) == 0 {
		return
	}
	e.Align(8)
	if e.order == hostOrder {
		e.buf = append(e.buf, asBytes(v)...)
		return
	}
	b := e.grow(8 * len(v))
	if e.order == BigEndian {
		for i, x := range v {
			binary.BigEndian.PutUint64(b[8*i:], x)
		}
	} else {
		for i, x := range v {
			binary.LittleEndian.PutUint64(b[8*i:], x)
		}
	}
}

// WriteLongLongRun appends the elements of an []int64 run, 8-aligned.
func (e *Encoder) WriteLongLongRun(v []int64) {
	if len(v) == 0 {
		return
	}
	e.Align(8)
	if e.order == hostOrder {
		e.buf = append(e.buf, asBytes(v)...)
		return
	}
	b := e.grow(8 * len(v))
	if e.order == BigEndian {
		for i, x := range v {
			binary.BigEndian.PutUint64(b[8*i:], uint64(x))
		}
	} else {
		for i, x := range v {
			binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
		}
	}
}

// WriteFloatRun appends the elements of a []float32 run, 4-aligned.
func (e *Encoder) WriteFloatRun(v []float32) {
	if len(v) == 0 {
		return
	}
	e.Align(4)
	if e.order == hostOrder {
		e.buf = append(e.buf, asBytes(v)...)
		return
	}
	b := e.grow(4 * len(v))
	bits := asBytes(v)
	// Swap the host-layout words into the stream order.
	for i := 0; i < len(v); i++ {
		b[4*i+0], b[4*i+1], b[4*i+2], b[4*i+3] =
			bits[4*i+3], bits[4*i+2], bits[4*i+1], bits[4*i+0]
	}
}

// WriteDoubleRun appends the elements of a []float64 run, 8-aligned.
func (e *Encoder) WriteDoubleRun(v []float64) {
	if len(v) == 0 {
		return
	}
	e.Align(8)
	if e.order == hostOrder {
		e.buf = append(e.buf, asBytes(v)...)
		return
	}
	b := e.grow(8 * len(v))
	bits := asBytes(v)
	for i := 0; i < len(v); i++ {
		for j := 0; j < 8; j++ {
			b[8*i+j] = bits[8*i+7-j]
		}
	}
}

// bulkRead aligns to size, checks that n elements of size bytes are
// available, and returns the raw view. A nil view with nil error means
// n == 0.
func (d *Decoder) bulkRead(n, size int) ([]byte, error) {
	if n < 0 || n > maxSeqLen {
		return nil, ErrShortBuffer
	}
	if n == 0 {
		return nil, nil // zero-length runs consume nothing, not even padding
	}
	if err := d.Align(size); err != nil {
		return nil, err
	}
	total := n * size
	if err := d.need(total); err != nil {
		return nil, err
	}
	b := d.buf[d.pos : d.pos+total]
	d.pos += total
	return b, nil
}

// ReadUShortRun consumes n 2-aligned uint16 elements.
func (d *Decoder) ReadUShortRun(n int) ([]uint16, error) {
	b, err := d.bulkRead(n, 2)
	if err != nil {
		return nil, err
	}
	out := make([]uint16, n)
	if d.order == hostOrder {
		copy(asBytes(out), b)
	} else if d.order == BigEndian {
		for i := range out {
			out[i] = binary.BigEndian.Uint16(b[2*i:])
		}
	} else {
		for i := range out {
			out[i] = binary.LittleEndian.Uint16(b[2*i:])
		}
	}
	return out, nil
}

// ReadShortRun consumes n 2-aligned int16 elements.
func (d *Decoder) ReadShortRun(n int) ([]int16, error) {
	b, err := d.bulkRead(n, 2)
	if err != nil {
		return nil, err
	}
	out := make([]int16, n)
	if d.order == hostOrder {
		copy(asBytes(out), b)
	} else if d.order == BigEndian {
		for i := range out {
			out[i] = int16(binary.BigEndian.Uint16(b[2*i:]))
		}
	} else {
		for i := range out {
			out[i] = int16(binary.LittleEndian.Uint16(b[2*i:]))
		}
	}
	return out, nil
}

// ReadULongRun consumes n 4-aligned uint32 elements.
func (d *Decoder) ReadULongRun(n int) ([]uint32, error) {
	b, err := d.bulkRead(n, 4)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	if d.order == hostOrder {
		copy(asBytes(out), b)
	} else if d.order == BigEndian {
		for i := range out {
			out[i] = binary.BigEndian.Uint32(b[4*i:])
		}
	} else {
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(b[4*i:])
		}
	}
	return out, nil
}

// ReadLongRun consumes n 4-aligned int32 elements.
func (d *Decoder) ReadLongRun(n int) ([]int32, error) {
	b, err := d.bulkRead(n, 4)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	if d.order == hostOrder {
		copy(asBytes(out), b)
	} else if d.order == BigEndian {
		for i := range out {
			out[i] = int32(binary.BigEndian.Uint32(b[4*i:]))
		}
	} else {
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
		}
	}
	return out, nil
}

// ReadULongLongRun consumes n 8-aligned uint64 elements.
func (d *Decoder) ReadULongLongRun(n int) ([]uint64, error) {
	b, err := d.bulkRead(n, 8)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	if d.order == hostOrder {
		copy(asBytes(out), b)
	} else if d.order == BigEndian {
		for i := range out {
			out[i] = binary.BigEndian.Uint64(b[8*i:])
		}
	} else {
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(b[8*i:])
		}
	}
	return out, nil
}

// ReadLongLongRun consumes n 8-aligned int64 elements.
func (d *Decoder) ReadLongLongRun(n int) ([]int64, error) {
	b, err := d.bulkRead(n, 8)
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	if d.order == hostOrder {
		copy(asBytes(out), b)
	} else if d.order == BigEndian {
		for i := range out {
			out[i] = int64(binary.BigEndian.Uint64(b[8*i:]))
		}
	} else {
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
		}
	}
	return out, nil
}

// ReadFloatRun consumes n 4-aligned float32 elements.
func (d *Decoder) ReadFloatRun(n int) ([]float32, error) {
	b, err := d.bulkRead(n, 4)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	ob := asBytes(out)
	if d.order == hostOrder {
		copy(ob, b)
	} else {
		for i := 0; i < n; i++ {
			ob[4*i+0], ob[4*i+1], ob[4*i+2], ob[4*i+3] =
				b[4*i+3], b[4*i+2], b[4*i+1], b[4*i+0]
		}
	}
	return out, nil
}

// ReadDoubleRun consumes n 8-aligned float64 elements.
func (d *Decoder) ReadDoubleRun(n int) ([]float64, error) {
	b, err := d.bulkRead(n, 8)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	ob := asBytes(out)
	if d.order == hostOrder {
		copy(ob, b)
	} else {
		for i := 0; i < n; i++ {
			for j := 0; j < 8; j++ {
				ob[8*i+j] = b[8*i+7-j]
			}
		}
	}
	return out, nil
}
