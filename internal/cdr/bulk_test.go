package cdr

import (
	"bytes"
	"math"
	"testing"
)

// writeElems marshals the run element by element through the scalar
// encoders — the reference the bulk writers must match byte for byte.
func writeElems[T any](e *Encoder, v []T, w func(*Encoder, T)) {
	for _, x := range v {
		w(e, x)
	}
}

func checkBulkWrite[T comparable](t *testing.T, name string, v []T,
	scalar func(*Encoder, T), bulk func(*Encoder, []T),
	read func(*Decoder, int) ([]T, error)) {
	t.Helper()
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		for _, base := range []int{0, 1, 3, 12} {
			ref := NewEncoder(order, base)
			ref.WriteOctet(0xAA) // perturb alignment inside the stream
			writeElems(ref, v, scalar)

			got := NewEncoder(order, base)
			got.WriteOctet(0xAA)
			bulk(got, v)

			if !bytes.Equal(ref.Bytes(), got.Bytes()) {
				t.Fatalf("%s order=%v base=%d: bulk bytes differ\nref %x\ngot %x",
					name, order, base, ref.Bytes(), got.Bytes())
			}

			d := NewDecoder(order, base, got.Bytes())
			if _, err := d.ReadOctet(); err != nil {
				t.Fatal(err)
			}
			out, err := read(d, len(v))
			if err != nil {
				t.Fatalf("%s order=%v base=%d: bulk read: %v", name, order, base, err)
			}
			if len(out) != len(v) {
				t.Fatalf("%s: read %d elements, want %d", name, len(out), len(v))
			}
			for i := range v {
				if out[i] != v[i] {
					t.Fatalf("%s order=%v: element %d = %v, want %v", name, order, i, out[i], v[i])
				}
			}
			if d.Remaining() != 0 {
				t.Fatalf("%s: %d bytes left over", name, d.Remaining())
			}
		}
	}
}

func TestBulkRunsMatchScalar(t *testing.T) {
	checkBulkWrite(t, "ushort", []uint16{0, 1, 0x1234, 0xFFFF},
		(*Encoder).WriteUShort, (*Encoder).WriteUShortRun, (*Decoder).ReadUShortRun)
	checkBulkWrite(t, "short", []int16{0, -1, 0x1234, -0x8000},
		(*Encoder).WriteShort, (*Encoder).WriteShortRun, (*Decoder).ReadShortRun)
	checkBulkWrite(t, "ulong", []uint32{0, 1, 0xDEADBEEF, 0xFFFFFFFF},
		(*Encoder).WriteULong, (*Encoder).WriteULongRun, (*Decoder).ReadULongRun)
	checkBulkWrite(t, "long", []int32{0, -1, 1 << 30, -(1 << 31)},
		(*Encoder).WriteLong, (*Encoder).WriteLongRun, (*Decoder).ReadLongRun)
	checkBulkWrite(t, "ulonglong", []uint64{0, 1, 0xDEADBEEFCAFEF00D, math.MaxUint64},
		(*Encoder).WriteULongLong, (*Encoder).WriteULongLongRun, (*Decoder).ReadULongLongRun)
	checkBulkWrite(t, "longlong", []int64{0, -1, 1 << 62, math.MinInt64},
		(*Encoder).WriteLongLong, (*Encoder).WriteLongLongRun, (*Decoder).ReadLongLongRun)
	checkBulkWrite(t, "float", []float32{0, 1.5, -2.25, math.MaxFloat32, float32(math.Inf(1))},
		(*Encoder).WriteFloat, (*Encoder).WriteFloatRun, (*Decoder).ReadFloatRun)
	checkBulkWrite(t, "double", []float64{0, 1.5, -2.25, math.MaxFloat64, math.Inf(-1)},
		(*Encoder).WriteDouble, (*Encoder).WriteDoubleRun, (*Decoder).ReadDoubleRun)
}

func TestBulkEmptyRuns(t *testing.T) {
	e := NewEncoder(NativeOrder, 0)
	e.WriteULongRun(nil)
	e.WriteDoubleRun(nil)
	e.WriteOctetRun(nil)
	if e.Len() != 0 {
		t.Fatalf("empty runs wrote %d bytes", e.Len())
	}
	d := NewDecoder(NativeOrder, 0, nil)
	if out, err := d.ReadULongRun(0); err != nil || len(out) != 0 {
		t.Fatalf("ReadULongRun(0) = %v, %v", out, err)
	}
	if out, err := d.ReadOctetRun(0); err != nil || len(out) != 0 {
		t.Fatalf("ReadOctetRun(0) = %v, %v", out, err)
	}
}

func TestBulkEmptyRunAtUnalignedOffset(t *testing.T) {
	// A zero-length run must not pad the stream: the per-element
	// reference loop never executes, so it never aligns either.
	e := NewEncoder(NativeOrder, 0)
	e.WriteOctet(1)
	e.WriteDoubleRun(nil)
	e.WriteOctet(2)
	if want := []byte{1, 2}; !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("stream = %x, want %x", e.Bytes(), want)
	}
	d := NewDecoder(NativeOrder, 0, e.Bytes())
	if _, err := d.ReadOctet(); err != nil {
		t.Fatal(err)
	}
	if out, err := d.ReadDoubleRun(0); err != nil || len(out) != 0 {
		t.Fatalf("ReadDoubleRun(0) = %v, %v", out, err)
	}
	if b, err := d.ReadOctet(); err != nil || b != 2 {
		t.Fatalf("trailing octet = %d, %v", b, err)
	}
}

func TestBulkReadGuards(t *testing.T) {
	e := NewEncoder(NativeOrder, 0)
	e.WriteULongRun([]uint32{1, 2, 3})
	d := NewDecoder(NativeOrder, 0, e.Bytes())
	if _, err := d.ReadULongRun(4); err == nil {
		t.Fatal("short read succeeded")
	}
	d = NewDecoder(NativeOrder, 0, e.Bytes())
	if _, err := d.ReadULongRun(-1); err == nil {
		t.Fatal("negative count succeeded")
	}
	d = NewDecoder(NativeOrder, 0, e.Bytes())
	// A hostile count must fail the bounds check before allocating.
	if _, err := d.ReadDoubleRun(1 << 29); err == nil {
		t.Fatal("hostile count succeeded")
	}
	d = NewDecoder(NativeOrder, 0, []byte{1, 2})
	if _, err := d.ReadOctetRun(3); err == nil {
		t.Fatal("short octet run succeeded")
	}
	if _, err := d.ReadOctetRun(-1); err == nil {
		t.Fatal("negative octet run succeeded")
	}
}

func TestOctetRunRoundTrip(t *testing.T) {
	payload := []byte{9, 8, 7, 6, 5}
	e := NewEncoder(BigEndian, 0)
	e.WriteOctetRun(payload)
	d := NewDecoder(BigEndian, 0, e.Bytes())
	out, err := d.ReadOctetRun(len(payload))
	if err != nil || !bytes.Equal(out, payload) {
		t.Fatalf("round trip = %x, %v", out, err)
	}
	// The copy must not alias the stream.
	out[0] = 0xFF
	if e.Bytes()[0] == 0xFF {
		t.Fatal("ReadOctetRun aliases the stream")
	}
}

func TestHostOrderDetection(t *testing.T) {
	// Whatever the host is, a native-order bulk write must round-trip
	// through the scalar reader.
	e := NewEncoder(HostOrder(), 0)
	e.WriteULongRun([]uint32{0x01020304})
	d := NewDecoder(HostOrder(), 0, e.Bytes())
	v, err := d.ReadULong()
	if err != nil || v != 0x01020304 {
		t.Fatalf("native round trip = %#x, %v", v, err)
	}
}
