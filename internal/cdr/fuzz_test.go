package cdr

import "testing"

// FuzzDecoder feeds arbitrary bytes through every decode entry point;
// the decoder must only ever return errors, never panic. The seed
// corpus runs as part of the normal test suite.
func FuzzDecoder(f *testing.F) {
	e := NewEncoder(NativeOrder, 0)
	e.WriteString("seed")
	e.WriteULong(7)
	e.WriteOctetSeq([]byte{1, 2, 3})
	f.Add(e.Bytes(), true)
	f.Add([]byte{}, false)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, true)
	f.Fuzz(func(t *testing.T, data []byte, little bool) {
		ord := BigEndian
		if little {
			ord = LittleEndian
		}
		d := NewDecoder(ord, 0, data)
		for d.Remaining() > 0 {
			before := d.Pos()
			_, _ = d.ReadString()
			_, _ = d.ReadOctetSeq()
			_, _ = d.ReadEncapsulation()
			_, _ = d.ReadDouble()
			if d.Pos() == before {
				_, _ = d.ReadOctet()
			}
			if d.Pos() == before {
				break
			}
		}
	})
}
