// Package cdr implements the OMG Common Data Representation (CDR),
// the transfer syntax used by GIOP messages.
//
// CDR aligns every primitive value to its natural size relative to the
// start of the stream (the start of the GIOP message body counts as
// offset zero) and supports both big- and little-endian byte orders,
// selected by the sender and advertised in the GIOP header flags.
//
// The package provides an Encoder that appends values to a growing
// buffer and a Decoder that consumes values from a byte slice. Both
// track absolute stream offsets so alignment is computed exactly as the
// specification requires, even when an encoder starts at a non-zero
// offset (as it does when a request body follows a 12-byte GIOP
// header).
package cdr

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ByteOrder identifies the byte order of a CDR stream.
type ByteOrder byte

const (
	// BigEndian is the network byte order; GIOP flag bit 0 clear.
	BigEndian ByteOrder = 0
	// LittleEndian is the byte order of x86 hosts; GIOP flag bit 0 set.
	LittleEndian ByteOrder = 1
)

// NativeOrder is the byte order new encoders use by default. CORBA lets
// the sender marshal in its native order and the receiver swap only on
// mismatch; the paper's homogeneous-cluster fast path relies on this.
const NativeOrder = LittleEndian

func (o ByteOrder) String() string {
	if o == BigEndian {
		return "big-endian"
	}
	return "little-endian"
}

// ErrShortBuffer is returned when a Decoder runs out of input.
var ErrShortBuffer = errors.New("cdr: short buffer")

// ErrBadString is returned for malformed CDR strings (missing or
// misplaced NUL terminator, or an impossible length).
var ErrBadString = errors.New("cdr: malformed string")

// maxSeqLen bounds sequence and string lengths accepted by the decoder
// so a corrupt or hostile length prefix cannot trigger a huge
// allocation. 1 GiB comfortably exceeds any block in the paper's
// 4 KiB..16 MiB sweep.
const maxSeqLen = 1 << 30

// Encoder marshals values into CDR form. The zero value is not ready
// for use; call NewEncoder.
type Encoder struct {
	buf   []byte
	base  int // absolute stream offset of buf[0]
	order ByteOrder
}

// NewEncoder returns an Encoder marshaling in the given byte order,
// with buf[0] lying at absolute stream offset base.
func NewEncoder(order ByteOrder, base int) *Encoder {
	return &Encoder{order: order, base: base}
}

// Reset empties the encoder for reuse, keeping its buffer capacity.
func (e *Encoder) Reset(order ByteOrder, base int) {
	e.buf = e.buf[:0]
	e.order = order
	e.base = base
}

// maxPooledEncoder bounds the capacity of buffers retained by the
// encoder pool so a single huge standard-path body cannot pin memory
// indefinitely; larger buffers are left to the garbage collector.
const maxPooledEncoder = 1 << 20

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a pooled Encoder reset to the given order and
// base. Pair with PutEncoder once the encoded bytes have been consumed
// (Bytes aliases the encoder's buffer, so the slice is dead after
// PutEncoder).
func GetEncoder(order ByteOrder, base int) *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.Reset(order, base)
	return e
}

// PutEncoder returns an encoder to the pool. The caller must not use
// the encoder, or any slice obtained from Bytes, afterwards.
func PutEncoder(e *Encoder) {
	if e == nil || cap(e.buf) > maxPooledEncoder {
		return
	}
	encoderPool.Put(e)
}

// Order reports the encoder's byte order.
func (e *Encoder) Order() ByteOrder { return e.order }

// Bytes returns the encoded stream. The slice aliases the encoder's
// internal buffer and is invalidated by further writes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far (excluding base).
func (e *Encoder) Len() int { return len(e.buf) }

// Offset returns the absolute stream offset of the next byte written.
func (e *Encoder) Offset() int { return e.base + len(e.buf) }

// Align pads the stream with zero bytes so the next write lands on a
// multiple of n (n must be a power of two no greater than 8).
func (e *Encoder) Align(n int) {
	off := e.Offset()
	pad := (n - off%n) % n
	for i := 0; i < pad; i++ {
		e.buf = append(e.buf, 0)
	}
}

// WriteOctet appends a single octet (no alignment needed).
func (e *Encoder) WriteOctet(v byte) { e.buf = append(e.buf, v) }

// WriteBoolean appends a CDR boolean (one octet, 0 or 1).
func (e *Encoder) WriteBoolean(v bool) {
	if v {
		e.WriteOctet(1)
	} else {
		e.WriteOctet(0)
	}
}

// WriteChar appends a CDR char (one octet, ISO 8859-1).
func (e *Encoder) WriteChar(v byte) { e.WriteOctet(v) }

// WriteUShort appends a CDR unsigned short, 2-aligned.
func (e *Encoder) WriteUShort(v uint16) {
	e.Align(2)
	if e.order == BigEndian {
		e.buf = append(e.buf, byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf, byte(v), byte(v>>8))
	}
}

// WriteShort appends a CDR short, 2-aligned.
func (e *Encoder) WriteShort(v int16) { e.WriteUShort(uint16(v)) }

// WriteULong appends a CDR unsigned long, 4-aligned.
func (e *Encoder) WriteULong(v uint32) {
	e.Align(4)
	if e.order == BigEndian {
		e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

// WriteLong appends a CDR long, 4-aligned.
func (e *Encoder) WriteLong(v int32) { e.WriteULong(uint32(v)) }

// WriteULongLong appends a CDR unsigned long long, 8-aligned.
func (e *Encoder) WriteULongLong(v uint64) {
	e.Align(8)
	if e.order == BigEndian {
		e.buf = append(e.buf,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
}

// WriteLongLong appends a CDR long long, 8-aligned.
func (e *Encoder) WriteLongLong(v int64) { e.WriteULongLong(uint64(v)) }

// WriteFloat appends a CDR IEEE-754 float, 4-aligned.
func (e *Encoder) WriteFloat(v float32) { e.WriteULong(math.Float32bits(v)) }

// WriteDouble appends a CDR IEEE-754 double, 8-aligned.
func (e *Encoder) WriteDouble(v float64) { e.WriteULongLong(math.Float64bits(v)) }

// WriteString appends a CDR string: a ulong length that includes the
// terminating NUL, the bytes, and the NUL.
func (e *Encoder) WriteString(s string) {
	e.WriteULong(uint32(len(s) + 1))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, 0)
}

// WriteOctetSeq appends a sequence<octet>: ulong count then raw bytes.
func (e *Encoder) WriteOctetSeq(p []byte) {
	e.WriteULong(uint32(len(p)))
	e.buf = append(e.buf, p...)
}

// WriteRaw appends bytes with no count and no alignment. It is the
// low-level hook used by GIOP headers and by the standard (copying)
// marshal path of the ORB.
func (e *Encoder) WriteRaw(p []byte) { e.buf = append(e.buf, p...) }

// WriteEncapsulation appends a CDR encapsulation: a sequence<octet>
// whose first octet is the byte order of the encapsulated stream.
// build is called with a fresh encoder positioned at encapsulation
// offset 1 (per the spec, alignment inside an encapsulation restarts
// at the beginning of the encapsulated stream).
func (e *Encoder) WriteEncapsulation(order ByteOrder, build func(*Encoder)) {
	inner := NewEncoder(order, 1)
	build(inner)
	e.WriteULong(uint32(1 + len(inner.buf)))
	e.WriteOctet(byte(order))
	e.buf = append(e.buf, inner.buf...)
}

// Decoder unmarshals values from a CDR stream.
type Decoder struct {
	buf   []byte
	pos   int
	base  int // absolute stream offset of buf[0]
	order ByteOrder
}

// NewDecoder returns a Decoder reading buf in the given byte order,
// with buf[0] lying at absolute stream offset base.
func NewDecoder(order ByteOrder, base int, buf []byte) *Decoder {
	return &Decoder{order: order, base: base, buf: buf}
}

// Reset repoints the decoder at buf for reuse.
func (d *Decoder) Reset(order ByteOrder, base int, buf []byte) {
	d.buf = buf
	d.pos = 0
	d.base = base
	d.order = order
}

var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// GetDecoder returns a pooled Decoder reading buf. Pair with
// PutDecoder once decoding is complete.
func GetDecoder(order ByteOrder, base int, buf []byte) *Decoder {
	d := decoderPool.Get().(*Decoder)
	d.Reset(order, base, buf)
	return d
}

// PutDecoder returns a decoder to the pool, dropping its reference to
// the underlying buffer.
func PutDecoder(d *Decoder) {
	if d == nil {
		return
	}
	d.buf = nil
	decoderPool.Put(d)
}

// Order reports the decoder's byte order.
func (d *Decoder) Order() ByteOrder { return d.order }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Offset returns the absolute stream offset of the next byte read.
func (d *Decoder) Offset() int { return d.base + d.pos }

// Pos returns the decoder's position within its buffer.
func (d *Decoder) Pos() int { return d.pos }

// Align skips padding so the next read lands on a multiple of n.
func (d *Decoder) Align(n int) error {
	off := d.Offset()
	pad := (n - off%n) % n
	if d.pos+pad > len(d.buf) {
		return ErrShortBuffer
	}
	d.pos += pad
	return nil
}

func (d *Decoder) need(n int) error {
	if d.pos+n > len(d.buf) {
		return ErrShortBuffer
	}
	return nil
}

// ReadOctet consumes a single octet.
func (d *Decoder) ReadOctet() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

// ReadBoolean consumes a CDR boolean. Any nonzero octet is true, as
// tolerated by common ORBs.
func (d *Decoder) ReadBoolean() (bool, error) {
	v, err := d.ReadOctet()
	return v != 0, err
}

// ReadChar consumes a CDR char.
func (d *Decoder) ReadChar() (byte, error) { return d.ReadOctet() }

// ReadUShort consumes a 2-aligned CDR unsigned short.
func (d *Decoder) ReadUShort() (uint16, error) {
	if err := d.Align(2); err != nil {
		return 0, err
	}
	if err := d.need(2); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 2
	if d.order == BigEndian {
		return uint16(b[0])<<8 | uint16(b[1]), nil
	}
	return uint16(b[1])<<8 | uint16(b[0]), nil
}

// ReadShort consumes a 2-aligned CDR short.
func (d *Decoder) ReadShort() (int16, error) {
	v, err := d.ReadUShort()
	return int16(v), err
}

// ReadULong consumes a 4-aligned CDR unsigned long.
func (d *Decoder) ReadULong() (uint32, error) {
	if err := d.Align(4); err != nil {
		return 0, err
	}
	if err := d.need(4); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 4
	if d.order == BigEndian {
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
	}
	return uint32(b[3])<<24 | uint32(b[2])<<16 | uint32(b[1])<<8 | uint32(b[0]), nil
}

// ReadLong consumes a 4-aligned CDR long.
func (d *Decoder) ReadLong() (int32, error) {
	v, err := d.ReadULong()
	return int32(v), err
}

// ReadULongLong consumes an 8-aligned CDR unsigned long long.
func (d *Decoder) ReadULongLong() (uint64, error) {
	if err := d.Align(8); err != nil {
		return 0, err
	}
	if err := d.need(8); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 8
	if d.order == BigEndian {
		return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
			uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7]), nil
	}
	return uint64(b[7])<<56 | uint64(b[6])<<48 | uint64(b[5])<<40 | uint64(b[4])<<32 |
		uint64(b[3])<<24 | uint64(b[2])<<16 | uint64(b[1])<<8 | uint64(b[0]), nil
}

// ReadLongLong consumes an 8-aligned CDR long long.
func (d *Decoder) ReadLongLong() (int64, error) {
	v, err := d.ReadULongLong()
	return int64(v), err
}

// ReadFloat consumes a 4-aligned CDR float.
func (d *Decoder) ReadFloat() (float32, error) {
	v, err := d.ReadULong()
	return math.Float32frombits(v), err
}

// ReadDouble consumes an 8-aligned CDR double.
func (d *Decoder) ReadDouble() (float64, error) {
	v, err := d.ReadULongLong()
	return math.Float64frombits(v), err
}

// ReadString consumes a CDR string and returns it without the
// terminating NUL.
func (d *Decoder) ReadString() (string, error) {
	n, err := d.ReadULong()
	if err != nil {
		return "", err
	}
	if n == 0 || n > maxSeqLen {
		return "", fmt.Errorf("%w: length %d", ErrBadString, n)
	}
	if err := d.need(int(n)); err != nil {
		return "", err
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	if b[n-1] != 0 {
		return "", fmt.Errorf("%w: missing NUL", ErrBadString)
	}
	return string(b[:n-1]), nil
}

// ReadOctetSeq consumes a sequence<octet> and returns a copy of its
// contents.
func (d *Decoder) ReadOctetSeq() ([]byte, error) {
	b, err := d.ReadOctetSeqView()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// ReadOctetSeqView consumes a sequence<octet> and returns a view
// aliasing the decoder's buffer. This is the zero-copy read used by
// the deposit path; the caller must not outlive the buffer.
func (d *Decoder) ReadOctetSeqView() ([]byte, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if n > maxSeqLen {
		return nil, fmt.Errorf("cdr: sequence length %d exceeds limit", n)
	}
	if err := d.need(int(n)); err != nil {
		return nil, err
	}
	b := d.buf[d.pos : d.pos+int(n) : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// ReadRaw consumes exactly n bytes with no alignment and returns a view
// aliasing the decoder's buffer.
func (d *Decoder) ReadRaw(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("cdr: negative raw length %d", n)
	}
	if err := d.need(n); err != nil {
		return nil, err
	}
	b := d.buf[d.pos : d.pos+n : d.pos+n]
	d.pos += n
	return b, nil
}

// ReadEncapsulation consumes a CDR encapsulation and returns a Decoder
// positioned after the encapsulated stream's byte-order octet.
func (d *Decoder) ReadEncapsulation() (*Decoder, error) {
	body, err := d.ReadOctetSeqView()
	if err != nil {
		return nil, err
	}
	if len(body) < 1 {
		return nil, fmt.Errorf("cdr: empty encapsulation")
	}
	order := ByteOrder(body[0] & 1)
	return NewDecoder(order, 1, body[1:]), nil
}
