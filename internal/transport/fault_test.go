package transport

import (
	"strings"
	"testing"
	"time"
)

// --- injector decision logic -----------------------------------------------

func TestInjectorNthFiresOnceByDefault(t *testing.T) {
	inj := NewFaultInjector(1).Add(Rule{Op: OpWrite, Kind: FaultReset, Nth: 3})
	var fires []int
	for i := 1; i <= 10; i++ {
		if inj.decide(OpWrite, ClassControl) != nil {
			fires = append(fires, i)
		}
	}
	if len(fires) != 1 || fires[0] != 3 {
		t.Fatalf("fired on events %v, want exactly [3]", fires)
	}
	if inj.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", inj.Fired())
	}
	log := inj.Log()
	if len(log) != 1 || !strings.Contains(log[0], "reset") {
		t.Fatalf("log %v, want one reset entry", log)
	}
}

func TestInjectorCountBoundsFires(t *testing.T) {
	inj := NewFaultInjector(1).Add(Rule{Op: OpRead, Kind: FaultReset, Nth: 2, Count: 3})
	var fires []int
	for i := 1; i <= 10; i++ {
		if inj.decide(OpRead, ClassAny) != nil {
			fires = append(fires, i)
		}
	}
	// Nth=2 with Count=3: events 2, 3, 4.
	if len(fires) != 3 || fires[0] != 2 || fires[2] != 4 {
		t.Fatalf("fired on events %v, want [2 3 4]", fires)
	}
}

func TestInjectorProbIsSeeded(t *testing.T) {
	seq := func(seed int64) []bool {
		inj := NewFaultInjector(seed).Add(Rule{Op: OpWrite, Kind: FaultReset, Prob: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = inj.decide(OpWrite, ClassControl) != nil
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	// Prob rules have no implicit once-only bound.
	if fired < 20 || fired > 150 {
		t.Fatalf("p=0.3 over 200 events fired %d times", fired)
	}
}

func TestInjectorClassFilter(t *testing.T) {
	inj := NewFaultInjector(1).Add(Rule{Op: OpWrite, Kind: FaultReset, Class: ClassData, Nth: 1})
	if inj.decide(OpWrite, ClassControl) != nil {
		t.Fatal("control event matched a data-only rule")
	}
	if inj.decide(OpWrite, ClassAny) != nil {
		t.Fatal("unclassified event matched a data-only rule")
	}
	if inj.decide(OpRead, ClassData) != nil {
		t.Fatal("read event matched a write rule")
	}
	if inj.decide(OpWrite, ClassData) == nil {
		t.Fatal("first data write did not fire")
	}
}

// --- faulty connections over inproc ----------------------------------------

// faultyPair dials a Faulty-wrapped inproc transport and returns both
// connection endpoints.
func faultyPair(t *testing.T, inj *FaultInjector) (client, server Conn) {
	t.Helper()
	ft := &Faulty{Inner: &InProc{}, Inj: inj}
	l, err := ft.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			close(accepted)
			return
		}
		accepted <- c
	}()
	c, err := ft.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	s, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() {
		_ = c.Close()
		_ = s.Close()
		_ = l.Close()
	})
	return c, s
}

// drain reads s until error and returns everything received.
func drain(s Conn) chan []byte {
	got := make(chan []byte, 1)
	go func() {
		var all []byte
		buf := make([]byte, 256)
		for {
			n, err := s.Read(buf)
			all = append(all, buf[:n]...)
			if err != nil {
				got <- all
				return
			}
		}
	}()
	return got
}

func TestFaultyConnClassifiesFromFirstBytes(t *testing.T) {
	inj := NewFaultInjector(7).Add(Rule{Op: OpWrite, Kind: FaultReset, Class: ClassData, Nth: 1})

	// A control-looking stream (GIOP magic) never matches the data rule.
	ctrl, srv := faultyPair(t, inj)
	got := drain(srv)
	if _, err := ctrl.Write([]byte("GIOP\x01\x00\x00\x00")); err != nil {
		t.Fatalf("control write hit a data rule: %v", err)
	}
	_ = ctrl.Close()
	<-got

	// A deposit stream (ZCDC preamble) is reset on its first write.
	data, _ := faultyPair(t, inj)
	pre := append([]byte("ZCDC"), make([]byte, 8)...)
	if _, err := data.Write(pre); err == nil {
		t.Fatal("data write survived the reset rule")
	}
	if inj.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", inj.Fired())
	}
}

func TestFaultyConnTruncateWrite(t *testing.T) {
	inj := NewFaultInjector(1).Add(Rule{Op: OpWrite, Kind: FaultTruncate, Nth: 1, TruncateAt: 5})
	c, s := faultyPair(t, inj)
	got := drain(s)
	n, err := c.Write([]byte("0123456789abcdef"))
	if err == nil {
		t.Fatal("truncated write reported success")
	}
	if n != 5 {
		t.Fatalf("wrote %d bytes, want 5", n)
	}
	if recv := <-got; string(recv) != "01234" {
		t.Fatalf("peer received %q, want the 5-byte prefix", recv)
	}
}

func TestFaultyConnTruncateGatherWrite(t *testing.T) {
	inj := NewFaultInjector(1).Add(Rule{Op: OpWrite, Kind: FaultTruncate, Nth: 1, TruncateAt: 6})
	c, s := faultyPair(t, inj)
	got := drain(s)
	n, err := c.WriteGather([]byte("GIOP"), []byte("abcdefgh"))
	if err == nil {
		t.Fatal("truncated gather write reported success")
	}
	if n != 6 {
		t.Fatalf("wrote %d bytes, want 6", n)
	}
	if recv := <-got; string(recv) != "GIOPab" {
		t.Fatalf("peer received %q, want %q", recv, "GIOPab")
	}
}

func TestFaultyConnSlowWriteDeliversEverything(t *testing.T) {
	inj := NewFaultInjector(1).Add(Rule{Op: OpWrite, Kind: FaultSlow, Nth: 1, Chunk: 4,
		Delay: time.Millisecond})
	c, s := faultyPair(t, inj)
	got := drain(s)
	payload := []byte("GIOP-slow-payload-0123456789")
	n, err := c.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("slow write: n=%d err=%v", n, err)
	}
	_ = c.Close()
	if recv := <-got; string(recv) != string(payload) {
		t.Fatalf("peer received %q, want full payload", recv)
	}
}

func TestFaultyConnStallDelaysWrite(t *testing.T) {
	const delay = 50 * time.Millisecond
	inj := NewFaultInjector(1).Add(Rule{Op: OpWrite, Kind: FaultStall, Nth: 1, Delay: delay})
	c, s := faultyPair(t, inj)
	got := drain(s)
	start := time.Now()
	if _, err := c.Write([]byte("GIOPstall")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < delay-5*time.Millisecond {
		t.Fatalf("stalled write returned after %v, want >= %v", d, delay)
	}
	_ = c.Close()
	<-got
}

func TestFaultyDialRefusedOnce(t *testing.T) {
	inj := NewFaultInjector(1).Add(Rule{Op: OpDial, Kind: FaultRefuse, Nth: 1})
	ft := &Faulty{Inner: &InProc{}, Inj: inj}
	l, err := ft.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := ft.Dial(l.Addr()); err == nil {
		t.Fatal("first dial was not refused")
	}
	// Nth rules fire once by default: the redial goes through.
	c, err := ft.Dial(l.Addr())
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	_ = c.Close()
	if s, err := l.Accept(); err == nil {
		_ = s.Close()
	}
}
