//go:build linux

// The kernel zero-copy transport: plain TCP sockets whose data-channel
// connections send large payloads with MSG_ZEROCOPY (the kernel pins
// the pages; a completion on the socket error queue reports when they
// may be reused) and transmit file-backed payloads disk→wire with
// sendfile. Every connection starts as a plain stream; the DIALER
// promotes it when (and only when) its first write begins with the ZC
// data preamble "ZCDC" — i.e. exactly the connections the ORB uses as
// data channels, mirroring the shm promotion. Promotion prepends one
// 16-byte header carrying the dialer's zero-copy threshold, so both
// ends agree on when MSG_ZEROCOPY is worth attempting. Control
// connections (GIOP first bytes) never promote and behave like plain
// TCP.
//
// Completion semantics: each MSG_ZEROCOPY sendmsg consumes one 32-bit
// per-socket sequence number; the kernel reports inclusive ranges
// [ee_info, ee_data] of completed sequences as SO_EE_ORIGIN_ZEROCOPY
// extended errors on the error queue, merging adjacent ranges. A
// completion with SO_EE_CODE_ZEROCOPY_COPIED set means the kernel fell
// back to copying (loopback, or a NIC without SG) — the send still
// succeeded, the pages were just not pinned. CopiedLimit>0 degrades
// the connection after that many consecutive copied completions so
// callers stop paying the pinning overhead for nothing.
// docs/ZEROCOPY.md has the full contract.

package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Linux socket constants absent from the stdlib syscall package.
const (
	soZeroCopy  = 60        // SO_ZEROCOPY (SOL_SOCKET)
	msgZeroCopy = 0x4000000 // MSG_ZEROCOPY sendmsg flag

	soEEOriginZeroCopy     = 5 // sock_extended_err.ee_origin for zc completions
	soEECodeZeroCopyCopied = 1 // ee_code bit: kernel copied after all
)

// kzcPromoMagic opens the 16-byte promotion header:
//
//	magic[8] | threshold u32 | reserved u32
//
// little-endian. The threshold is the dialer's zero-copy threshold;
// the acceptor adopts it for its reply deposits so both directions of
// the channel agree.
const kzcPromoMagic = "ZKZCTCP1"

const kzcPromoLen = 16

// kzcMaxThreshold caps the peer-negotiated zero-copy threshold. The
// header field is a u32; a hostile or corrupt value >= 2^31 would wrap
// negative through the int32 store and force every deposit — any size —
// onto the MSG_ZEROCOPY path, letting a peer impose pinning/completion
// overhead on all sends. Out-of-range values are ignored in favor of
// the local default.
const kzcMaxThreshold = 1 << 30

// KZC is the kernel zero-copy transport. See the package comment above
// for the promotion protocol and completion semantics.
type KZC struct {
	// Threshold is the minimum payload size for MSG_ZEROCOPY sends
	// (default DefaultZeroCopyThreshold). Smaller payloads take the
	// plain write path.
	Threshold int
	// CopiedLimit, when > 0, degrades a connection to plain writes
	// after that many consecutive copied completions (the kernel is
	// copying anyway, so pinning buys nothing). 0 tolerates copied
	// completions forever — the right default on loopback, where every
	// completion is copied but the accounting stays exercised.
	CopiedLimit int
	// Disable treats the kernel as lacking SO_ZEROCOPY (tests of the
	// degraded-kernel fallback): connections still promote and carry
	// deposits, but WriteZeroCopy reports ErrZeroCopyUnavailable.
	// SendFile is unaffected.
	Disable bool
	Stats   *Stats
	// Faults, if non-nil, is consulted directly by kzc connections:
	// zero-copy sends and sendfile transfers classify as ClassKzc.
	// (Wrapping KZC in Faulty would hide the ZeroCopyWriter/FileSender
	// fast paths, so the injector is embedded instead, like SHM.)
	Faults *FaultInjector
}

// Name implements Transport.
func (t *KZC) Name() string { return "kzc" }

func (t *KZC) threshold() int {
	if t.Threshold > 0 {
		return t.Threshold
	}
	return DefaultZeroCopyThreshold
}

// Listen implements Transport. The empty address (or ":0") binds
// 127.0.0.1 on an ephemeral port.
func (t *KZC) Listen(addr string) (Listener, error) {
	addr = trimKzc(addr)
	if addr == "" || addr == ":0" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: kzc listen %s: %w", addr, err)
	}
	return &kzcListener{l: l.(*net.TCPListener), t: t}, nil
}

// Dial implements Transport. Dial events are classless: only ClassAny
// injector rules match, mirroring Faulty.Dial.
func (t *KZC) Dial(addr string) (Conn, error) {
	if t.Faults != nil {
		if r := t.Faults.decide(OpDial, ClassAny); r != nil {
			switch r.Kind {
			case FaultStall, FaultSlow:
				time.Sleep(r.Delay)
			default:
				return nil, fmt.Errorf("transport: kzc dial %s: injected %s", addr, r.Kind)
			}
		}
	}
	c, err := net.Dial("tcp", trimKzc(addr))
	if err != nil {
		return nil, fmt.Errorf("transport: kzc dial %s: %w", addr, err)
	}
	return newKzcConn(t, c.(*net.TCPConn), true)
}

// trimKzc accepts both "kzc://host:port" URIs and bare addresses.
func trimKzc(addr string) string {
	const pfx = "kzc://"
	if len(addr) >= len(pfx) && addr[:len(pfx)] == pfx {
		return addr[len(pfx):]
	}
	return addr
}

type kzcListener struct {
	l *net.TCPListener
	t *KZC
}

func (l *kzcListener) Accept() (Conn, error) {
	c, err := l.l.AcceptTCP()
	if err != nil {
		return nil, err
	}
	return newKzcConn(l.t, c, false)
}

func (l *kzcListener) Close() error { return l.l.Close() }
func (l *kzcListener) Addr() string { return "kzc://" + l.l.Addr().String() }

func newKzcConn(t *KZC, tc *net.TCPConn, dialer bool) (*kzcConn, error) {
	_ = tc.SetNoDelay(true)
	raw, err := tc.SyscallConn()
	if err != nil {
		_ = tc.Close()
		return nil, fmt.Errorf("transport: kzc raw conn: %w", err)
	}
	c := &kzcConn{t: t, tc: tc, raw: raw, dialer: dialer,
		reapWake: make(chan struct{}, 1), closed: make(chan struct{})}
	c.thresh.Store(int32(t.threshold()))
	c.sendFn = func(fd uintptr) bool {
		c.sendN, c.sendErr = syscall.SendmsgN(int(fd), c.sendBuf, nil, nil, msgZeroCopy)
		return c.sendErr != syscall.EAGAIN
	}
	c.sendVecFn = func(fd uintptr) bool {
		n, _, e := syscall.Syscall(syscall.SYS_SENDMSG, fd,
			uintptr(unsafe.Pointer(&c.sendMsg)), uintptr(msgZeroCopy))
		if e != 0 {
			c.sendN, c.sendErr = 0, e
		} else {
			c.sendN, c.sendErr = int(n), nil
		}
		return c.sendErr != syscall.EAGAIN
	}
	c.reapFn = func(fd uintptr) {
		_, c.reapN, _, _, c.reapErr = syscall.Recvmsg(int(fd), c.reapDummy[:],
			c.oob[:], syscall.MSG_ERRQUEUE|syscall.MSG_DONTWAIT)
	}
	return c, nil
}

// kzcPending tracks the completion callback of one WriteZeroCopy: the
// inclusive sequence range its sendmsgs consumed, how many sequences
// are still outstanding, and whether any completed as copied. The
// entry is registered BEFORE the write's first sendmsg and stays open
// while the send loop runs: the kernel merges adjacent completion
// ranges across writes, so the reaper can see a range covering this
// write's sequences (merged with an earlier write's) before the loop
// finishes, and must find the entry rather than drop the range. An
// open entry never fires, even at remain==0, until the writer closes
// it.
type kzcPending struct {
	lo, hi uint32
	remain int
	nseq   int  // sequences reserved over the entry's lifetime
	open   bool // send loop still running; hold even at remain==0
	copied bool
	done   func(copied bool)
}

// kzcConn is one connection: a TCP stream that may promote to
// zero-copy data-channel mode. Plain reads/writes behave exactly like
// the TCP transport; WriteZeroCopy and SendFile add the kernel-assist
// paths.
type kzcConn struct {
	t      *KZC
	tc     *net.TCPConn
	raw    syscall.RawConn
	dialer bool

	// zcOn: SO_ZEROCOPY active on this socket (set at promotion /
	// probe). zcDown: degraded after copied-completion streak. thresh:
	// the negotiated zero-copy threshold.
	zcOn   atomic.Bool
	zcDown atomic.Bool
	thresh atomic.Int32

	wmu       sync.Mutex
	gbufs     net.Buffers // stream gather scratch
	noPromote bool        // dialer: first write was not ZCDC
	promoted  bool        // dialer: promotion header sent

	// Zero-copy send scratch (wmu held): the raw.Write callback is
	// built once so the per-send fast path allocates nothing.
	sendFn  func(fd uintptr) bool
	sendBuf []byte
	sendN   int
	sendErr error
	// Vectored zero-copy scratch (wmu held): the iovec array and
	// msghdr for WriteZeroCopyGather's sendmsg, plus its prebuilt
	// callback.
	sendVecFn func(fd uintptr) bool
	sendVec   []syscall.Iovec
	sendMsg   syscall.Msghdr

	rmu      sync.Mutex
	probed   bool   // acceptor: promotion probe done
	leftover []byte // acceptor: stream bytes consumed by the probe

	// Completion bookkeeping. sendSeq mirrors the kernel's per-socket
	// zero-copy counter (incremented per successful MSG_ZEROCOPY
	// sendmsg); pend holds registered callbacks in FIFO order.
	cmu         sync.Mutex
	sendSeq     uint32
	pend        []*kzcPending
	pendFree    []*kzcPending
	copiedRun   int // consecutive copied completions
	outstanding atomic.Int32

	// Errqueue reap scratch, guarded by reapMu (one reaper at a time;
	// concurrent callers skip — the active one drains everything). The
	// prebuilt raw.Control callback keeps the reap path allocation-free.
	reapMu    sync.Mutex
	reapFn    func(fd uintptr)
	reapN     int
	reapErr   error
	reapDummy [1]byte
	oob       [512]byte
	fired     []*kzcPending

	reaperOnce sync.Once
	reapWake   chan struct{} // signals the parked reaper on registration
	closed     chan struct{}
	closeOnce  sync.Once
	closeErr   error
}

// ZeroCopyThreshold implements ZeroCopyWriter.
func (c *kzcConn) ZeroCopyThreshold() int { return int(c.thresh.Load()) }

// setZeroCopy enables SO_ZEROCOPY on the socket; failure (EOPNOTSUPP
// on old kernels, or Disable) leaves the connection on plain writes.
func (c *kzcConn) setZeroCopy() {
	if c.t.Disable {
		return
	}
	var serr error
	if err := c.raw.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soZeroCopy, 1)
	}); err == nil && serr == nil {
		c.zcOn.Store(true)
	}
}

// promoteLocked (dialer, wmu held) sends the promotion header and
// enables SO_ZEROCOPY. The header precedes the caller's first bytes on
// the stream; a write failure surfaces through the caller's write.
func (c *kzcConn) promoteLocked() error {
	c.promoted = true
	var hdr [kzcPromoLen]byte
	copy(hdr[:], kzcPromoMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(c.t.threshold()))
	if _, err := c.tc.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: kzc promotion header: %w", err)
	}
	c.setZeroCopy()
	return nil
}

// probeLocked (acceptor, rmu held) inspects the first bytes of the
// stream: a promotion header adopts the dialer's threshold and enables
// SO_ZEROCOPY for reply deposits; anything else stays a plain stream
// with the probed bytes kept as read leftover.
func (c *kzcConn) probeLocked() error {
	c.probed = true
	var hdr [kzcPromoLen]byte
	got, err := io.ReadFull(c.tc, hdr[:8])
	if err != nil {
		c.leftover = append([]byte(nil), hdr[:got]...)
		if got > 0 {
			return nil // deliver what arrived; the error resurfaces next read
		}
		return err
	}
	if string(hdr[:8]) != kzcPromoMagic {
		c.leftover = append([]byte(nil), hdr[:8]...)
		return nil
	}
	if _, err := io.ReadFull(c.tc, hdr[8:]); err != nil {
		return fmt.Errorf("transport: kzc promotion header: %w", err)
	}
	if th := binary.LittleEndian.Uint32(hdr[8:]); th > 0 && th <= kzcMaxThreshold {
		c.thresh.Store(int32(th))
	}
	c.setZeroCopy()
	return nil
}

func (c *kzcConn) countRead(n int) {
	if c.t.Stats != nil && n > 0 {
		c.t.Stats.BytesRecv.Add(int64(n))
		c.t.Stats.Reads.Add(1)
	}
}

func (c *kzcConn) countWrite(n int64, segs int) {
	if c.t.Stats != nil && n > 0 {
		c.t.Stats.BytesSent.Add(n)
		c.t.Stats.Writes.Add(1)
		if segs > 0 {
			c.t.Stats.GatherSegments.Add(int64(segs))
		}
	}
}

func (c *kzcConn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	if !c.dialer && !c.probed {
		if err := c.probeLocked(); err != nil {
			c.rmu.Unlock()
			return 0, err
		}
	}
	if len(c.leftover) > 0 {
		n := copy(p, c.leftover)
		c.leftover = c.leftover[n:]
		c.rmu.Unlock()
		c.countRead(n)
		return n, nil
	}
	c.rmu.Unlock()
	n, err := c.tc.Read(p)
	c.countRead(n)
	return n, err
}

// maybePromoteLocked runs the dialer-side promotion check on the first
// write (wmu held).
func (c *kzcConn) maybePromoteLocked(first []byte) error {
	if !c.dialer || c.promoted || c.noPromote {
		return nil
	}
	if len(first) >= 4 && string(first[:4]) == "ZCDC" {
		return c.promoteLocked()
	}
	c.noPromote = true
	return nil
}

func (c *kzcConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	if err := c.maybePromoteLocked(p); err != nil {
		c.wmu.Unlock()
		return 0, err
	}
	n, err := c.tc.Write(p)
	c.wmu.Unlock()
	c.countWrite(int64(n), 0)
	return n, err
}

func (c *kzcConn) WriteGather(segs ...[]byte) (int64, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var first []byte
	for _, s := range segs {
		if len(s) > 0 {
			first = s
			break
		}
	}
	if err := c.maybePromoteLocked(first); err != nil {
		return 0, err
	}
	bufs := c.gbufs[:0]
	var total int64
	for _, s := range segs {
		if len(s) == 0 {
			continue
		}
		bufs = append(bufs, s)
		total += int64(len(s))
	}
	c.gbufs = bufs
	nsegs := len(bufs)
	n, err := bufs.WriteTo(c.tc)
	clear(c.gbufs[:nsegs])
	c.gbufs = c.gbufs[:0]
	c.countWrite(n, len(segs))
	if err != nil {
		return n, fmt.Errorf("transport: kzc gather write: %w", err)
	}
	if n != total {
		return n, fmt.Errorf("transport: kzc gather write short: %d of %d", n, total)
	}
	return n, nil
}

// plainWriteLocked writes p without zero-copy (wmu held), for the
// ENOBUFS and fault degradation paths.
func (c *kzcConn) plainWriteLocked(p []byte) error {
	n, err := c.tc.Write(p)
	c.countWrite(int64(n), 0)
	return err
}

// WriteZeroCopy implements ZeroCopyWriter: send p with MSG_ZEROCOPY
// and fire done exactly once when the kernel releases the pages. See
// the interface contract in direct.go.
func (c *kzcConn) WriteZeroCopy(p []byte, done func(copied bool)) (bool, error) {
	if !c.zcOn.Load() || c.zcDown.Load() {
		return false, ErrZeroCopyUnavailable
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.t.Faults != nil {
		if r := c.t.Faults.decide(OpWrite, ClassKzc); r != nil {
			switch r.Kind {
			case FaultENOBUFS:
				// Kernel can't pin pages: degrade this one send to a
				// plain copying write, completed immediately.
				err := c.plainWriteLocked(p)
				done(true)
				return true, err
			case FaultDropCompletion:
				// Bytes arrive, the completion never does: the caller's
				// lease sweeper must reclaim the buffer.
				return true, c.plainWriteLocked(p)
			case FaultReset, FaultPeerKill:
				done(true)
				_ = c.Close()
				return true, fmt.Errorf("kzcconn: injected %s on zero-copy send", r.Kind)
			case FaultStall, FaultSlow:
				time.Sleep(r.Delay)
			}
		}
	}
	pd := c.reservePending(done)
	sent := 0
	for sent < len(p) {
		// Reserve the sequence the sendmsg will consume BEFORE issuing
		// it: the kernel can queue (and the reaper drain) the completion
		// the moment the syscall returns, so recording the sequence
		// afterwards would race a merged completion against an
		// unregistered range.
		c.reserveSeq(pd)
		c.sendBuf = p[sent:]
		werr := c.raw.Write(c.sendFn)
		n, serr := c.sendN, c.sendErr
		c.sendBuf = nil
		if werr != nil && serr == nil {
			serr = werr
		}
		if serr != nil {
			// A failed sendmsg consumed no kernel sequence (the kernel
			// aborts the zero-copy id on error), so the reservation
			// rolls back.
			c.unreserveSeq(pd)
			if serr == syscall.ENOBUFS {
				// Optmem exhaustion: finish with a plain copying write.
				// The kernel holds no reference beyond the sequences
				// already consumed.
				perr := c.plainWriteLocked(p[sent:])
				c.closePending(pd, true)
				return true, perr
			}
			// Stream broken mid-payload. Sequences already consumed
			// complete via the reaper (or the caller's sweeper).
			c.closePending(pd, true)
			return true, fmt.Errorf("transport: kzc zero-copy send: %w", serr)
		}
		sent += n
	}
	c.countWrite(int64(len(p)), 0)
	c.closePending(pd, false)
	c.reapOnce() // opportunistic non-blocking drain
	return true, nil
}

// plainWriteVecLocked writes segs without zero-copy (wmu held): the
// ENOBUFS and fault degradation path of the gather send.
func (c *kzcConn) plainWriteVecLocked(segs [][]byte) error {
	bufs := c.gbufs[:0]
	for _, s := range segs {
		if len(s) > 0 {
			bufs = append(bufs, s)
		}
	}
	c.gbufs = bufs
	nsegs := len(bufs)
	n, err := bufs.WriteTo(c.tc)
	clear(c.gbufs[:nsegs])
	c.gbufs = c.gbufs[:0]
	c.countWrite(n, 0)
	return err
}

// WriteZeroCopyGather implements ZeroCopyGatherWriter: the whole train
// goes out in vectored MSG_ZEROCOPY sendmsgs (normally exactly one —
// one syscall, one completion sequence for N segments), and done fires
// exactly once when the kernel releases every page. The completion
// range the reaper sees covers the single shared sequence, which is
// how per-buffer callbacks stay cheap: the caller fans the one train
// completion out to its segments.
func (c *kzcConn) WriteZeroCopyGather(segs [][]byte, done func(copied bool)) (bool, error) {
	if !c.zcOn.Load() || c.zcDown.Load() {
		return false, ErrZeroCopyUnavailable
	}
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	if total == 0 {
		done(false)
		return true, nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.t.Faults != nil {
		if r := c.t.Faults.decide(OpWrite, ClassKzc); r != nil {
			switch r.Kind {
			case FaultENOBUFS:
				err := c.plainWriteVecLocked(segs)
				done(true)
				return true, err
			case FaultDropCompletion:
				return true, c.plainWriteVecLocked(segs)
			case FaultReset, FaultPeerKill:
				done(true)
				_ = c.Close()
				return true, fmt.Errorf("kzcconn: injected %s on zero-copy gather send", r.Kind)
			case FaultStall, FaultSlow:
				time.Sleep(r.Delay)
			}
		}
	}
	pd := c.reservePending(done)
	sent := 0
	for sent < total {
		// Rebuild the iovec view of the unsent tail (a partial sendmsg
		// re-vectors from the new offset) and reserve the sequence this
		// sendmsg will consume before issuing it, as in WriteZeroCopy.
		iovs := c.sendVec[:0]
		skip := sent
		for _, s := range segs {
			if skip >= len(s) {
				skip -= len(s)
				continue
			}
			rest := s[skip:]
			skip = 0
			iovs = append(iovs, syscall.Iovec{
				Base: &rest[0], Len: uint64(len(rest)),
			})
		}
		c.sendVec = iovs
		c.sendMsg = syscall.Msghdr{Iov: &iovs[0], Iovlen: uint64(len(iovs))}
		c.reserveSeq(pd)
		werr := c.raw.Write(c.sendVecFn)
		n, serr := c.sendN, c.sendErr
		c.sendMsg = syscall.Msghdr{}
		clear(c.sendVec)
		c.sendVec = c.sendVec[:0]
		if werr != nil && serr == nil {
			serr = werr
		}
		if serr != nil {
			c.unreserveSeq(pd)
			if serr == syscall.ENOBUFS {
				perr := c.plainWriteVecLocked(tailSegs(segs, sent))
				c.closePending(pd, true)
				return true, perr
			}
			c.closePending(pd, true)
			return true, fmt.Errorf("transport: kzc zero-copy gather send: %w", serr)
		}
		sent += n
	}
	c.countWrite(int64(total), len(segs))
	c.closePending(pd, false)
	c.reapOnce()
	return true, nil
}

// tailSegs returns the segment list with the first skip bytes removed.
func tailSegs(segs [][]byte, skip int) [][]byte {
	out := make([][]byte, 0, len(segs))
	for _, s := range segs {
		if skip >= len(s) {
			skip -= len(s)
			continue
		}
		out = append(out, s[skip:])
		skip = 0
	}
	return out
}

// reservePending registers an open pending entry before a write's
// first MSG_ZEROCOPY sendmsg, so completions reaped while the send
// loop is still running always find their entry.
func (c *kzcConn) reservePending(done func(bool)) *kzcPending {
	c.cmu.Lock()
	var p *kzcPending
	if n := len(c.pendFree); n > 0 {
		p = c.pendFree[n-1]
		c.pendFree = c.pendFree[:n-1]
	} else {
		p = new(kzcPending)
	}
	p.lo, p.hi, p.remain, p.nseq, p.copied, p.done = 0, 0, 0, 0, false, done
	p.open = true
	c.pend = append(c.pend, p)
	c.cmu.Unlock()
	c.outstanding.Add(1)
	c.kickReaper()
	return p
}

// reserveSeq mirrors the kernel's per-socket zero-copy counter: it
// assigns the sequence the next successful MSG_ZEROCOPY sendmsg will
// consume and extends p to cover it.
func (c *kzcConn) reserveSeq(p *kzcPending) {
	c.cmu.Lock()
	seq := c.sendSeq
	c.sendSeq++
	if p.nseq == 0 {
		p.lo = seq
	}
	p.hi = seq
	p.nseq++
	p.remain++
	c.cmu.Unlock()
}

// unreserveSeq rolls back a reservation whose sendmsg failed outright:
// the kernel's counter did not advance, so no completion for the
// sequence can ever arrive. (wmu serializes writers, so the rolled-back
// sequence is reused by this write's next attempt or the next write.)
func (c *kzcConn) unreserveSeq(p *kzcPending) {
	c.cmu.Lock()
	c.sendSeq--
	p.hi--
	p.nseq--
	p.remain--
	c.cmu.Unlock()
}

// closePending ends a write's send loop: the entry stops accepting
// sequences and may now fire. If every reserved sequence has already
// completed (or none were consumed at all), done fires here; otherwise
// the reaper fires it when the last completion lands. copiedTail marks
// the write as copied when its tail bytes went out as a plain
// fallback write.
func (c *kzcConn) closePending(p *kzcPending, copiedTail bool) {
	c.cmu.Lock()
	p.open = false
	if copiedTail {
		p.copied = true
	}
	fire := p.remain <= 0
	if fire {
		for i, q := range c.pend {
			if q == p {
				copy(c.pend[i:], c.pend[i+1:])
				c.pend[len(c.pend)-1] = nil
				c.pend = c.pend[:len(c.pend)-1]
				break
			}
		}
	}
	cp, d := p.copied, p.done
	c.cmu.Unlock()
	if fire {
		c.recyclePending(p)
		c.outstanding.Add(-1)
		if d != nil {
			d(cp)
		}
	}
}

// kickReaper starts the background completion reaper on first use and
// wakes it if it is parked with nothing outstanding.
func (c *kzcConn) kickReaper() {
	c.reaperOnce.Do(func() { go c.reapLoop() })
	select {
	case c.reapWake <- struct{}{}:
	default:
	}
}

// reapLoop drains errqueue completions until the connection closes.
// The errqueue cannot be waited on through the runtime poller without
// also waking on data readability, so the loop polls at 500µs — but
// only while completions are outstanding. With none it parks on
// reapWake until the next write registers a pending entry, so an idle
// promoted connection costs no wakeups.
func (c *kzcConn) reapLoop() {
	for {
		if c.outstanding.Load() == 0 {
			select {
			case <-c.closed:
				return
			case <-c.reapWake:
			}
		}
		select {
		case <-c.closed:
			return
		default:
		}
		c.reapOnce()
		time.Sleep(500 * time.Microsecond)
	}
}

// reapOnce drains all currently queued completions (non-blocking).
// Only one reaper runs at a time; a concurrent caller skips, since the
// active one loops until the queue is empty anyway.
func (c *kzcConn) reapOnce() {
	if !c.reapMu.TryLock() {
		return
	}
	defer c.reapMu.Unlock()
	for {
		cerr := c.raw.Control(c.reapFn)
		if cerr != nil || c.reapErr != nil || c.reapN <= 0 {
			return
		}
		// Walk the cmsg chain by hand: the stdlib parser allocates per
		// message, and this runs once per completion on the hot path.
		fired := c.fired[:0]
		rem := c.oob[:c.reapN]
		c.cmu.Lock()
		for len(rem) >= syscall.SizeofCmsghdr {
			h := (*syscall.Cmsghdr)(unsafe.Pointer(&rem[0]))
			l := int(h.Len)
			if l < syscall.SizeofCmsghdr || l > len(rem) {
				break
			}
			data := rem[syscall.SizeofCmsghdr:l]
			// sock_extended_err: ee_errno u32 | ee_origin u8 | ee_type u8
			// | ee_code u8 | pad | ee_info u32 | ee_data u32.
			if isRecvErr(h.Level, h.Type) && len(data) >= 16 &&
				data[4] == soEEOriginZeroCopy {
				copied := data[6]&soEECodeZeroCopyCopied != 0
				clo := binary.NativeEndian.Uint32(data[8:])
				chi := binary.NativeEndian.Uint32(data[12:])
				fired = append(fired, c.completeRangeLocked(clo, chi, copied)...)
			}
			adv := syscall.CmsgSpace(l - syscall.SizeofCmsghdr)
			if adv <= 0 || adv > len(rem) {
				break
			}
			rem = rem[adv:]
		}
		c.cmu.Unlock()
		for _, p := range fired {
			cp := p.copied
			d := p.done
			c.recyclePending(p)
			c.outstanding.Add(-1)
			if d != nil {
				d(cp)
			}
		}
		clear(fired)
		c.fired = fired[:0]
	}
}

// completeRangeLocked applies one completion range [clo,chi] (inclusive
// kernel sequence numbers) to the pending list, returning the entries
// whose every sequence has now completed. Caller holds cmu.
func (c *kzcConn) completeRangeLocked(clo, chi uint32, copied bool) []*kzcPending {
	n := int(chi - clo + 1)
	if copied {
		c.copiedRun += n
		if lim := c.t.CopiedLimit; lim > 0 && c.copiedRun >= lim {
			c.zcDown.Store(true)
		}
	} else {
		c.copiedRun = 0
	}
	var full []*kzcPending
	kept := c.pend[:0]
	for _, p := range c.pend {
		// Overlap of [p.lo,p.hi] with [clo,chi]; sequence wraparound is
		// ignored (2^32 sends per connection is out of scope). An entry
		// with no reserved sequences yet has meaningless lo/hi and
		// cannot match; an open entry absorbs completions but is held
		// until its send loop closes it (more sequences may follow).
		lo, hi := max(p.lo, clo), min(p.hi, chi)
		if p.nseq > 0 && lo <= hi {
			p.remain -= int(hi - lo + 1)
			if copied {
				p.copied = true
			}
			if p.remain <= 0 && !p.open {
				full = append(full, p)
				continue
			}
		}
		kept = append(kept, p)
	}
	// Drop references past the kept prefix so completed entries are
	// not pinned by the backing array.
	for i := len(kept); i < len(c.pend); i++ {
		c.pend[i] = nil
	}
	c.pend = kept
	return full
}

func (c *kzcConn) recyclePending(p *kzcPending) {
	*p = kzcPending{}
	c.cmu.Lock()
	if len(c.pendFree) < 32 {
		c.pendFree = append(c.pendFree, p)
	}
	c.cmu.Unlock()
}

// isRecvErr reports whether a cmsg carries an extended socket error
// (IPv4 or IPv6 error queue).
func isRecvErr(level, typ int32) bool {
	return (level == syscall.SOL_IP && typ == syscall.IP_RECVERR) ||
		(level == syscall.SOL_IPV6 && typ == syscall.IPV6_RECVERR)
}

// SendFile implements FileSender: transmit n bytes of f starting at
// off with sendfile, disk→wire without entering user space. It works
// on any kzc connection regardless of SO_ZEROCOPY state.
func (c *kzcConn) SendFile(f *os.File, off, n int64) (int64, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	want := n
	if c.t.Faults != nil {
		if r := c.t.Faults.decide(OpWrite, ClassKzc); r != nil {
			switch r.Kind {
			case FaultShortSplice:
				want = n / 2
			case FaultReset, FaultPeerKill:
				_ = c.Close()
				return 0, fmt.Errorf("kzcconn: injected %s on sendfile", r.Kind)
			case FaultStall, FaultSlow:
				time.Sleep(r.Delay)
			}
		}
	}
	src := int(f.Fd())
	var sent int64
	for sent < want {
		chunk := int(min(want-sent, 1<<20))
		var wn int
		var serr error
		pos := off + sent
		werr := c.raw.Write(func(fd uintptr) bool {
			wn, serr = syscall.Sendfile(int(fd), src, &pos, chunk)
			return serr != syscall.EAGAIN
		})
		if wn > 0 {
			sent += int64(wn)
		}
		if werr != nil && serr == nil {
			serr = werr
		}
		if serr != nil {
			c.countWrite(sent, 0)
			return sent, fmt.Errorf("transport: kzc sendfile: %w", serr)
		}
		if wn == 0 {
			c.countWrite(sent, 0)
			return sent, fmt.Errorf("transport: kzc sendfile: %w", io.ErrUnexpectedEOF)
		}
	}
	runtime.KeepAlive(f)
	c.countWrite(sent, 0)
	if sent < n {
		// Injected short splice: the stream is now desynced by design.
		return sent, fmt.Errorf("transport: kzc sendfile short: %d of %d", sent, n)
	}
	return sent, nil
}

func (c *kzcConn) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		// Pending completion callbacks are deliberately NOT fired: the
		// kernel may still hold page references, and the caller's lease
		// sweeper is the authority on reclaiming them. But a graceful
		// close keeps transmitting queued zero-copy skbs that reference
		// the caller's pages — after the sweeper has released the
		// buffers for reuse, a reused-and-overwritten buffer would
		// corrupt bytes still going out on the wire. So while
		// completions are outstanding the close aborts (SO_LINGER 0 →
		// RST): the kernel purges the send queue and drops its page
		// references before Close returns, making the subsequent
		// buffer release safe.
		if c.outstanding.Load() > 0 {
			_ = c.raw.Control(func(fd uintptr) {
				_ = syscall.SetsockoptLinger(int(fd), syscall.SOL_SOCKET,
					syscall.SO_LINGER, &syscall.Linger{Onoff: 1, Linger: 0})
			})
		}
		c.closeErr = c.tc.Close()
	})
	return c.closeErr
}

func (c *kzcConn) LocalAddr() string  { return "kzc://" + c.tc.LocalAddr().String() }
func (c *kzcConn) RemoteAddr() string { return "kzc://" + c.tc.RemoteAddr().String() }
