//go:build linux

// The shared-memory transport: control bytes ride a Unix domain
// socket, bulk payloads a memfd-backed ring pair mapped by both
// processes (internal/shmem). Every connection starts as a plain UDS
// stream; the DIALER promotes it to ring mode when (and only when) its
// first write begins with the ZC data preamble "ZCDC" — i.e. exactly
// the connections the ORB uses as data channels. Promotion sends one
// 32-byte header with the segment fd attached over SCM_RIGHTS; from
// then on every byte of the connection travels through the rings and
// the socket serves only as the liveness watchdog (a peer dying closes
// it, which unblocks ring waiters on the survivor). Control
// connections (GIOP first bytes) never promote and behave like any
// stream transport.
//
// The acceptor side must not write before its first successful read —
// it cannot know whether the stream promotes until the first bytes
// arrive. The ORB satisfies this naturally: a server only ever writes
// in response to a request. docs/SHM.md has the full handshake.

package transport

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"encoding/binary"

	"zcorba/internal/shmem"
)

// shmPromoMagic opens the 32-byte promotion header:
//
//	magic[8] | slotSize u32 | slotCount u32 | segBytes u64 | reserved u64
//
// all little-endian (the two ends share one host).
const shmPromoMagic = "ZSHMRNG1"

const shmPromoLen = 32

// SHM is the shared-memory transport. See the package comment above
// for the promotion protocol.
type SHM struct {
	// Dir is where auto-generated socket paths live; empty means the
	// system temp directory.
	Dir string
	// SlotSize/SlotCount select the ring geometry (shmem.Config
	// defaults apply when zero).
	SlotSize  int
	SlotCount int
	// StallTimeout bounds ring-credit waits before a deposit fails
	// with shmem.ErrRingStalled (default one second).
	StallTimeout time.Duration
	Stats        *Stats
	// Faults, if non-nil, is consulted directly by shm connections:
	// ring operations classify as ClassShm, stream bytes as
	// ClassControl. (Wrapping SHM in Faulty would hide the
	// DirectReader fast path, so the injector is embedded instead.)
	Faults *FaultInjector

	mu       sync.Mutex
	nextAuto int
}

// Name implements Transport.
func (t *SHM) Name() string { return "shm" }

func (t *SHM) cfg() shmem.Config {
	return shmem.Config{SlotSize: t.SlotSize, SlotCount: t.SlotCount}.WithDefaults()
}

// trimShm accepts both "shm://path" URIs and bare socket paths.
func trimShm(addr string) string {
	return strings.TrimPrefix(addr, "shm://")
}

// Listen implements Transport. The empty address (or ":0") picks a
// fresh socket path under Dir.
func (t *SHM) Listen(addr string) (Listener, error) {
	path := trimShm(addr)
	if path == "" || path == ":0" {
		dir := t.Dir
		if dir == "" {
			dir = os.TempDir()
		}
		t.mu.Lock()
		t.nextAuto++
		path = filepath.Join(dir, fmt.Sprintf("zshm-%d-%d.sock", os.Getpid(), t.nextAuto))
		t.mu.Unlock()
	}
	ul, err := net.Listen("unix", path)
	if err != nil {
		return nil, fmt.Errorf("transport: shm listen %s: %w", path, err)
	}
	return &shmListener{ul: ul.(*net.UnixListener), path: path, t: t}, nil
}

// Dial implements Transport. Dial events are classless: only ClassAny
// injector rules match, mirroring Faulty.Dial.
func (t *SHM) Dial(addr string) (Conn, error) {
	if t.Faults != nil {
		if r := t.Faults.decide(OpDial, ClassAny); r != nil {
			switch r.Kind {
			case FaultStall, FaultSlow:
				time.Sleep(r.Delay)
			default:
				return nil, fmt.Errorf("transport: shm dial %s: injected %s", addr, r.Kind)
			}
		}
	}
	path := trimShm(addr)
	c, err := net.Dial("unix", path)
	if err != nil {
		return nil, fmt.Errorf("transport: shm dial %s: %w", path, err)
	}
	return &shmConn{t: t, uc: c.(*net.UnixConn), dialer: true}, nil
}

type shmListener struct {
	ul   *net.UnixListener
	path string
	t    *SHM
}

func (l *shmListener) Accept() (Conn, error) {
	c, err := l.ul.AcceptUnix()
	if err != nil {
		return nil, err
	}
	return &shmConn{t: l.t, uc: c}, nil
}

func (l *shmListener) Close() error { return l.ul.Close() }
func (l *shmListener) Addr() string { return "shm://" + l.path }

// ringPair is the promoted state of a connection: the mapped segment
// plus this side's producer and consumer handles.
type ringPair struct {
	seg  *shmem.Segment
	prod *shmem.Producer
	cons *shmem.Consumer
}

// shmConn is one connection: a UDS stream that may promote to ring
// mode. rings flips from nil exactly once (under wmu on the dialer,
// under rmu on the acceptor); loads are lock-free.
type shmConn struct {
	t      *SHM
	uc     *net.UnixConn
	dialer bool

	rings     atomic.Pointer[ringPair]
	dead      atomic.Bool // peer process gone (watchdog)
	noPromote bool        // first write was not ZCDC: plain stream forever

	wmu   sync.Mutex
	gbufs net.Buffers // stream-mode gather scratch

	rmu      sync.Mutex
	probed   bool   // acceptor: promotion probe done
	leftover []byte // acceptor: stream bytes consumed by the probe
	cur      *recState
	curOff   int

	closeOnce sync.Once
	closeErr  error
}

// recState tracks one claimed ring record. The reader holds one
// reference while the record is current; every ReadDirect sub-view
// holds another. Whoever drops the count to zero retires the record.
// Release accounting is atomic-only — a sub-view released from another
// goroutine must not need the connection read lock, or it would
// deadlock against a reader parked in Next.
type recState struct {
	view *shmem.View
	refs atomic.Int32
}

// Release implements Releaser (and zcbuf.Releaser structurally).
func (r *recState) Release() {
	if r.refs.Add(-1) == 0 {
		r.view.Release()
	}
}

// kill simulates (or reacts to) peer death: raise the dead flag and
// tear down the socket so the other process notices too.
func (c *shmConn) kill() {
	c.dead.Store(true)
	_ = c.uc.Close()
}

func (c *shmConn) faultWrite() error {
	if c.t.Faults == nil {
		return nil
	}
	r := c.t.Faults.decide(OpWrite, ClassShm)
	if r == nil {
		return nil
	}
	switch r.Kind {
	case FaultPeerKill, FaultReset:
		c.kill()
		return fmt.Errorf("shmconn: injected %s on deposit: %w", r.Kind, shmem.ErrPeerDead)
	case FaultRingStall:
		return fmt.Errorf("shmconn: injected ring stall: %w", shmem.ErrRingStalled)
	case FaultSlotCorrupt:
		if rp := c.rings.Load(); rp != nil {
			rp.prod.CorruptNext()
		}
	case FaultStall, FaultSlow:
		time.Sleep(r.Delay)
	}
	return nil
}

func (c *shmConn) faultRead() error {
	if c.t.Faults == nil {
		return nil
	}
	r := c.t.Faults.decide(OpRead, ClassShm)
	if r == nil {
		return nil
	}
	switch r.Kind {
	case FaultPeerKill, FaultReset:
		c.kill()
		return fmt.Errorf("shmconn: injected %s on claim: %w", r.Kind, shmem.ErrPeerDead)
	case FaultStall, FaultSlow:
		time.Sleep(r.Delay)
	}
	return nil
}

// watchdog owns the UDS after promotion: nothing travels there any
// more, so a returning Read means the peer closed or died. Raising
// dead unblocks ring waiters on this side.
func (c *shmConn) watchdog() {
	var buf [16]byte
	for {
		if _, err := c.uc.Read(buf[:]); err != nil {
			c.dead.Store(true)
			return
		}
	}
}

// promoteLocked (dialer, wmu held) creates the segment, ships its fd,
// and flips the connection to ring mode. On any failure the
// connection stays a plain stream — correctness is preserved, only
// the zero-copy fast path is lost.
func (c *shmConn) promoteLocked() {
	cfg := c.t.cfg()
	seg, err := shmem.Create(cfg)
	if err != nil {
		c.noPromote = true
		return
	}
	var hdr [shmPromoLen]byte
	copy(hdr[:], shmPromoMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(cfg.SlotSize))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(cfg.SlotCount))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(cfg.SegmentBytes()))
	if err := shmem.SendFd(c.uc, hdr[:], seg.Fd()); err != nil {
		seg.Close()
		c.noPromote = true
		return
	}
	c.installRings(seg, 0)
}

// installRings wires this side's handles: the dialer produces into
// ring prodIdx (0) and consumes ring 1, the acceptor the mirror.
func (c *shmConn) installRings(seg *shmem.Segment, prodIdx int) {
	prod := seg.Ring(prodIdx).Producer()
	cons := seg.Ring(1 - prodIdx).Consumer()
	prod.Dead = &c.dead
	cons.Dead = &c.dead
	if c.t.StallTimeout > 0 {
		prod.StallTimeout = c.t.StallTimeout
	}
	c.rings.Store(&ringPair{seg: seg, prod: prod, cons: cons})
	go c.watchdog()
}

// probeLocked (acceptor, rmu held) inspects the first bytes of the
// stream: a promotion header flips to ring mode, anything else stays
// a stream with the probed bytes kept as read leftover.
func (c *shmConn) probeLocked() error {
	c.probed = true
	hdr := make([]byte, shmPromoLen)
	fd := -1
	got, err := c.readMsg(hdr[:8], &fd)
	if err != nil {
		c.leftover = hdr[:got]
		if got > 0 {
			return nil // deliver what arrived; the error resurfaces next read
		}
		return err
	}
	got = 8
	if string(hdr[:8]) != shmPromoMagic {
		c.leftover = hdr[:got]
		return nil
	}
	if _, err := c.readMsg(hdr[8:], &fd); err != nil {
		if fd >= 0 {
			syscall.Close(fd)
		}
		return fmt.Errorf("transport: shm promotion header: %w", err)
	}
	if fd < 0 {
		return fmt.Errorf("transport: shm promotion header carried no fd")
	}
	cfg := shmem.Config{
		SlotSize:  int(binary.LittleEndian.Uint32(hdr[8:])),
		SlotCount: int(binary.LittleEndian.Uint32(hdr[12:])),
	}
	segBytes := binary.LittleEndian.Uint64(hdr[16:])
	if err := cfg.Validate(); err != nil || uint64(cfg.SegmentBytes()) != segBytes {
		syscall.Close(fd)
		return fmt.Errorf("transport: shm promotion geometry invalid")
	}
	seg, err := shmem.Open(fd, cfg)
	if err != nil {
		return fmt.Errorf("transport: shm attach segment: %w", err)
	}
	c.installRings(seg, 1)
	return nil
}

// readMsg fills buf from the socket, collecting any SCM_RIGHTS fd that
// rides along into *fdp. Partial fills return the byte count with the
// error.
func (c *shmConn) readMsg(buf []byte, fdp *int) (int, error) {
	oob := make([]byte, syscall.CmsgSpace(4))
	got := 0
	for got < len(buf) {
		n, oobn, _, _, err := c.uc.ReadMsgUnix(buf[got:], oob)
		got += n
		if oobn > 0 {
			if fd, perr := shmem.ParseRightsFd(oob[:oobn]); perr == nil {
				if *fdp >= 0 {
					syscall.Close(*fdp)
				}
				*fdp = fd
			}
		}
		if err != nil {
			return got, err
		}
	}
	return got, nil
}

// mapRingErr translates ring errors into stream read semantics.
func mapRingErr(err error) error {
	if err == shmem.ErrProducerDone {
		return io.EOF
	}
	return err
}

// ensureRecordLocked makes cur the next unconsumed ring record,
// blocking in Next if none is published yet. Caller holds rmu.
func (c *shmConn) ensureRecordLocked(rp *ringPair) error {
	if c.cur != nil {
		return nil
	}
	if err := c.faultRead(); err != nil {
		return err
	}
	v, err := rp.cons.Next()
	if err != nil {
		return mapRingErr(err)
	}
	c.cur = &recState{view: v}
	c.cur.refs.Store(1)
	c.curOff = 0
	return nil
}

// finishRecordLocked drops the reader's reference on the current
// record; outstanding ReadDirect sub-views keep it alive.
func (c *shmConn) finishRecordLocked() {
	c.cur.Release()
	c.cur = nil
	c.curOff = 0
}

func (c *shmConn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if !c.dialer && !c.probed {
		if err := c.probeLocked(); err != nil {
			return 0, err
		}
	}
	rp := c.rings.Load()
	if rp == nil {
		if len(c.leftover) > 0 {
			n := copy(p, c.leftover)
			c.leftover = c.leftover[n:]
			c.countRead(n)
			return n, nil
		}
		n, err := c.uc.Read(p)
		c.countRead(n)
		return n, err
	}
	if err := c.ensureRecordLocked(rp); err != nil {
		return 0, err
	}
	b := c.cur.view.Bytes()
	n := copy(p, b[c.curOff:])
	c.curOff += n
	if c.curOff == len(b) {
		c.finishRecordLocked()
	}
	c.countRead(n)
	return n, nil
}

// ReadDirect implements DirectReader: a zero-copy view of the next n
// payload bytes. It only succeeds in ring mode when n lies within the
// current record (deposits are published one record per payload, so
// aligned readers always hit the whole-record case).
func (c *shmConn) ReadDirect(n int) ([]byte, Releaser, bool, error) {
	if c.rings.Load() == nil && c.dialer {
		return nil, nil, false, nil // unpromoted: caller uses the copy path
	}
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if !c.dialer && !c.probed {
		if err := c.probeLocked(); err != nil {
			return nil, nil, false, err
		}
	}
	rp := c.rings.Load()
	if rp == nil || len(c.leftover) > 0 {
		return nil, nil, false, nil
	}
	if err := c.ensureRecordLocked(rp); err != nil {
		return nil, nil, false, err
	}
	b := c.cur.view.Bytes()
	if c.curOff+n > len(b) {
		// Record boundary mismatch: let the stream path reassemble.
		return nil, nil, false, nil
	}
	rec := c.cur
	rec.refs.Add(1)
	view := b[c.curOff : c.curOff+n : c.curOff+n]
	c.curOff += n
	if c.curOff == len(b) {
		c.finishRecordLocked()
	}
	c.countRead(n)
	return view, rec, true, nil
}

func (c *shmConn) countRead(n int) {
	if c.t.Stats != nil && n > 0 {
		c.t.Stats.BytesRecv.Add(int64(n))
		c.t.Stats.Reads.Add(1)
	}
}

func (c *shmConn) countWrite(n int64, segs int) {
	if c.t.Stats != nil && n > 0 {
		c.t.Stats.BytesSent.Add(n)
		c.t.Stats.Writes.Add(1)
		if segs > 0 {
			c.t.Stats.GatherSegments.Add(int64(segs))
		}
	}
}

func (c *shmConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	rp := c.rings.Load()
	if rp == nil {
		if c.dialer && !c.noPromote {
			if len(p) >= 4 && string(p[:4]) == "ZCDC" {
				c.promoteLocked()
				rp = c.rings.Load()
			} else {
				c.noPromote = true
			}
		}
		if rp == nil {
			n, err := c.uc.Write(p)
			c.countWrite(int64(n), 0)
			return n, err
		}
	}
	if err := c.faultWrite(); err != nil {
		return 0, err
	}
	n, err := rp.prod.Write(p)
	c.countWrite(int64(n), 0)
	return n, err
}

// WriteGather publishes each segment as its own ring record, so the
// receiver's deposit claims align with record boundaries and stay
// zero-copy. In stream mode it is a writev like the TCP transport.
func (c *shmConn) WriteGather(segs ...[]byte) (int64, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	rp := c.rings.Load()
	if rp == nil {
		var first []byte
		for _, s := range segs {
			if len(s) > 0 {
				first = s
				break
			}
		}
		if c.dialer && !c.noPromote {
			if len(first) >= 4 && string(first[:4]) == "ZCDC" {
				c.promoteLocked()
				rp = c.rings.Load()
			} else {
				c.noPromote = true
			}
		}
		if rp == nil {
			return c.streamGatherLocked(segs)
		}
	}
	if err := c.faultWrite(); err != nil {
		return 0, err
	}
	// Multi-slot lease: the whole train's descriptor slots are credited
	// in one ring reservation and published with one head store, so the
	// peer's scatter loop sees all N records at once.
	bufs := c.gbufs[:0]
	for _, s := range segs {
		if len(s) > 0 {
			bufs = append(bufs, s)
		}
	}
	c.gbufs = bufs
	nsegs := len(bufs)
	total, err := rp.prod.WriteVec(bufs)
	clear(c.gbufs[:nsegs])
	c.gbufs = c.gbufs[:0]
	c.countWrite(total, len(segs))
	return total, err
}

func (c *shmConn) streamGatherLocked(segs [][]byte) (int64, error) {
	bufs := c.gbufs[:0]
	var total int64
	for _, s := range segs {
		if len(s) == 0 {
			continue
		}
		bufs = append(bufs, s)
		total += int64(len(s))
	}
	c.gbufs = bufs
	nsegs := len(bufs)
	n, err := bufs.WriteTo(c.uc)
	clear(c.gbufs[:nsegs])
	c.gbufs = c.gbufs[:0]
	c.countWrite(n, len(segs))
	if err != nil {
		return n, fmt.Errorf("transport: shm gather write: %w", err)
	}
	if n != total {
		return n, fmt.Errorf("transport: shm gather write short: %d of %d", n, total)
	}
	return n, nil
}

func (c *shmConn) Close() error {
	c.closeOnce.Do(func() {
		if rp := c.rings.Load(); rp != nil {
			// Closing the socket first trips the watchdog (Dead), so a
			// local writer parked in a credit wait unblocks immediately
			// rather than running out its stall timeout.
			c.closeErr = c.uc.Close()
			rp.prod.Close() // peer drains, then sees EOF
			rp.cons.Close() // peer's producer fails fast
			c.rmu.Lock()
			if c.cur != nil {
				c.finishRecordLocked()
			}
			c.rmu.Unlock()
			rp.seg.Close()
			return
		}
		c.closeErr = c.uc.Close()
	})
	return c.closeErr
}

func (c *shmConn) LocalAddr() string  { return "shm://" + c.uc.LocalAddr().String() }
func (c *shmConn) RemoteAddr() string { return "shm://" + c.uc.RemoteAddr().String() }
