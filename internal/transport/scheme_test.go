package transport

import (
	"sync"
	"testing"
)

func TestSplitScheme(t *testing.T) {
	cases := []struct{ in, scheme, rest string }{
		{"tcp://127.0.0.1:9", "tcp", "127.0.0.1:9"},
		{"inproc://node-a", "inproc", "node-a"},
		{"shm:///tmp/x.sock", "shm", "/tmp/x.sock"},
		{"127.0.0.1:9", "", "127.0.0.1:9"},
		{"", "", ""},
	}
	for _, c := range cases {
		s, r := SplitScheme(c.in)
		if s != c.scheme || r != c.rest {
			t.Fatalf("SplitScheme(%q) = %q,%q want %q,%q", c.in, s, r, c.scheme, c.rest)
		}
	}
}

func TestFromAddr(t *testing.T) {
	for _, c := range []struct{ in, name, rest string }{
		{"tcp://h:1", "tcp", "h:1"},
		{"h:1", "tcp", "h:1"},
		{"inproc://x", "inproc", "x"},
		{"shm:///tmp/s.sock", "shm", "/tmp/s.sock"},
	} {
		tr, rest, err := FromAddr(c.in, nil)
		if err != nil {
			t.Fatalf("FromAddr(%q): %v", c.in, err)
		}
		if tr.Name() != c.name || rest != c.rest {
			t.Fatalf("FromAddr(%q) = %s,%q want %s,%q", c.in, tr.Name(), rest, c.name, c.rest)
		}
	}
	if _, _, err := FromAddr("carrier-pigeon://x", nil); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	// inproc URIs share one registry: a listener parsed through
	// FromAddr is dialable through FromAddr.
	tr, rest, _ := FromAddr("inproc://from-addr-test", nil)
	l, err := tr.Listen(rest)
	if err != nil {
		t.Fatalf("inproc listen: %v", err)
	}
	defer l.Close()
	tr2, rest2, _ := FromAddr("inproc://from-addr-test", nil)
	if _, err := tr2.Dial(rest2); err != nil {
		t.Fatalf("inproc dial through second FromAddr: %v", err)
	}
}

// TestInProcDialCloseRace is the regression test for the listener
// channel race: a dial landing between Close()'s map removal and
// channel close used to panic (send on closed channel). Now it must
// return an error, always.
func TestInProcDialCloseRace(t *testing.T) {
	tr := &InProc{}
	for i := 0; i < 200; i++ {
		l, err := tr.Listen("race-addr")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			l.Close()
		}()
		go func() {
			defer wg.Done()
			c, err := tr.Dial("race-addr")
			if err == nil {
				// Won the race: the conn must still be usable or at
				// least closable without incident.
				c.Close()
			}
		}()
		wg.Wait()
	}
}

// TestInProcCloseDrainsQueued: dialers whose conns were queued but
// never accepted see their connection die with the listener instead
// of hanging forever.
func TestInProcCloseDrainsQueued(t *testing.T) {
	tr := &InProc{}
	l, err := tr.Listen("drain-addr")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	c, err := tr.Dial("drain-addr")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	l.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		done <- err
	}()
	if err := <-done; err == nil {
		t.Fatal("queued conn survived listener close")
	}
}
