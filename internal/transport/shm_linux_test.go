//go:build linux

package transport

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"zcorba/internal/shmem"
)

func shmPair(t *testing.T, tr *SHM) (Conn, Conn) {
	t.Helper()
	l, err := tr.Listen("")
	if err != nil {
		t.Fatalf("shm listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	var (
		srv  Conn
		aerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, aerr = l.Accept()
	}()
	cli, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatalf("shm dial: %v", err)
	}
	wg.Wait()
	if aerr != nil {
		t.Fatalf("shm accept: %v", aerr)
	}
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

func preamble(extra int) []byte {
	b := append([]byte("ZCDC"), make([]byte, 8+extra)...)
	for i := 4; i < len(b); i++ {
		b[i] = byte(i)
	}
	return b
}

// TestSHMStreamMode: a connection whose first bytes are not the ZC
// preamble stays an ordinary bidirectional stream (the control path).
func TestSHMStreamMode(t *testing.T) {
	cli, srv := shmPair(t, &SHM{})
	msg := []byte("GIOP control traffic")
	if _, err := cli.Write(msg); err != nil {
		t.Fatalf("client write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("control bytes corrupted")
	}
	// And the reply direction.
	if _, err := srv.WriteGather([]byte("re"), []byte("ply")); err != nil {
		t.Fatalf("server gather: %v", err)
	}
	got = make([]byte, 5)
	if _, err := io.ReadFull(cli, got); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if string(got) != "reply" {
		t.Fatalf("reply = %q", got)
	}
	if shmem.LiveSegments() != 0 {
		t.Fatal("stream-mode conn mapped a segment")
	}
}

// TestSHMPromotion: a ZCDC first write promotes the connection; bulk
// bytes then travel the ring in both directions and the stream Read
// path reassembles them transparently.
func TestSHMPromotion(t *testing.T) {
	cli, srv := shmPair(t, &SHM{})
	payload := bytes.Repeat([]byte{0xAB}, 100_000)
	if _, err := cli.Write(preamble(0)); err != nil {
		t.Fatalf("preamble write: %v", err)
	}
	if _, err := cli.WriteGather(payload[:60_000], payload[60_000:]); err != nil {
		t.Fatalf("payload write: %v", err)
	}
	got := make([]byte, 12)
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatalf("server preamble read: %v", err)
	}
	if !bytes.Equal(got, preamble(0)) {
		t.Fatal("preamble corrupted")
	}
	if shmem.LiveSegments() == 0 {
		t.Fatal("connection did not promote to ring mode")
	}
	got = make([]byte, len(payload))
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatalf("server payload read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted through ring")
	}
	// Reverse direction: results ride the second ring.
	if _, err := srv.Write(payload[:5000]); err != nil {
		t.Fatalf("server write: %v", err)
	}
	got = make([]byte, 5000)
	if _, err := io.ReadFull(cli, got); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if !bytes.Equal(got, payload[:5000]) {
		t.Fatal("reverse payload corrupted")
	}
}

// TestSHMReadDirect: whole-record claims come back as zero-copy views
// into the mapped segment, and releasing them returns ring credit.
func TestSHMReadDirect(t *testing.T) {
	cli, srv := shmPair(t, &SHM{})
	if _, err := cli.Write(preamble(0)); err != nil {
		t.Fatalf("preamble: %v", err)
	}
	if _, err := io.ReadFull(srv, make([]byte, 12)); err != nil {
		t.Fatalf("server preamble: %v", err)
	}
	dr, ok := srv.(DirectReader)
	if !ok {
		t.Fatal("shm conn does not implement DirectReader")
	}
	payload := bytes.Repeat([]byte{0x5A}, 1<<20)
	done := make(chan error, 1)
	go func() {
		_, err := cli.WriteGather(payload)
		done <- err
	}()
	view, rel, ok, err := dr.ReadDirect(len(payload))
	if err != nil || !ok {
		t.Fatalf("ReadDirect: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(view, payload) {
		t.Fatal("direct view corrupted")
	}
	rel.Release()
	if err := <-done; err != nil {
		t.Fatalf("deposit write: %v", err)
	}
	// Misaligned claims fall back instead of lying.
	if _, err := cli.Write(make([]byte, 100)); err != nil {
		t.Fatalf("small write: %v", err)
	}
	if _, _, ok, err := dr.ReadDirect(500); ok || err != nil {
		t.Fatalf("oversized claim: ok=%v err=%v, want fallback", ok, err)
	}
	got := make([]byte, 100)
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatalf("fallback read: %v", err)
	}
}

// TestSHMCloseReleasesSegment: orderly close retires the mapping on
// both sides (views released), proving no leak in the happy path.
func TestSHMCloseReleasesSegment(t *testing.T) {
	before := shmem.LiveSegments()
	cli, srv := shmPair(t, &SHM{})
	if _, err := cli.Write(preamble(0)); err != nil {
		t.Fatalf("preamble: %v", err)
	}
	if _, err := io.ReadFull(srv, make([]byte, 12)); err != nil {
		t.Fatalf("read: %v", err)
	}
	cli.Close()
	srv.Close()
	deadline := time.Now().Add(2 * time.Second)
	for shmem.LiveSegments() != before {
		if time.Now().After(deadline) {
			t.Fatalf("segments leaked: %d live, want %d", shmem.LiveSegments(), before)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSHMPeerDeadUnblocks: killing the socket under a promoted conn
// (what a peer crash looks like) unblocks a parked ring reader.
func TestSHMPeerDeadUnblocks(t *testing.T) {
	cli, srv := shmPair(t, &SHM{})
	if _, err := cli.Write(preamble(0)); err != nil {
		t.Fatalf("preamble: %v", err)
	}
	if _, err := io.ReadFull(srv, make([]byte, 12)); err != nil {
		t.Fatalf("read: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := srv.Read(make([]byte, 64))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cli.(*shmConn).kill() // simulated crash: no orderly producer close
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("read returned nil after peer death")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ring reader still parked after peer death")
	}
}

// TestSHMFaultInjection drives the three shm fault kinds end to end.
func TestSHMFaultInjection(t *testing.T) {
	t.Run("ring-stall", func(t *testing.T) {
		inj := NewFaultInjector(1).Add(Rule{Op: OpWrite, Class: ClassShm, Kind: FaultRingStall, Nth: 2})
		cli, srv := shmPair(t, &SHM{Faults: inj})
		if _, err := cli.Write(preamble(0)); err != nil {
			t.Fatalf("preamble: %v", err)
		}
		if _, err := io.ReadFull(srv, make([]byte, 12)); err != nil {
			t.Fatalf("read: %v", err)
		}
		if _, err := cli.Write(make([]byte, 100)); !errors.Is(err, shmem.ErrRingStalled) {
			t.Fatalf("write: %v, want ErrRingStalled", err)
		}
	})
	t.Run("slot-corrupt", func(t *testing.T) {
		inj := NewFaultInjector(1).Add(Rule{Op: OpWrite, Class: ClassShm, Kind: FaultSlotCorrupt, Nth: 2})
		cli, srv := shmPair(t, &SHM{Faults: inj})
		if _, err := cli.Write(preamble(0)); err != nil {
			t.Fatalf("preamble: %v", err)
		}
		if _, err := io.ReadFull(srv, make([]byte, 12)); err != nil {
			t.Fatalf("read: %v", err)
		}
		if _, err := cli.Write(make([]byte, 100)); err != nil {
			t.Fatalf("corrupted write itself should succeed: %v", err)
		}
		if _, err := srv.Read(make([]byte, 100)); !errors.Is(err, shmem.ErrCorrupt) {
			t.Fatalf("read: %v, want ErrCorrupt", err)
		}
	})
	t.Run("peer-kill", func(t *testing.T) {
		inj := NewFaultInjector(1).Add(Rule{Op: OpWrite, Class: ClassShm, Kind: FaultPeerKill, Nth: 2})
		cli, srv := shmPair(t, &SHM{Faults: inj})
		if _, err := cli.Write(preamble(0)); err != nil {
			t.Fatalf("preamble: %v", err)
		}
		if _, err := io.ReadFull(srv, make([]byte, 12)); err != nil {
			t.Fatalf("read: %v", err)
		}
		if _, err := cli.Write(make([]byte, 100)); !errors.Is(err, shmem.ErrPeerDead) {
			t.Fatalf("write: %v, want ErrPeerDead", err)
		}
	})
}
