//go:build linux

package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func kzcPair(t *testing.T, tr *KZC) (Conn, Conn) {
	t.Helper()
	l, err := tr.Listen("")
	if err != nil {
		t.Fatalf("kzc listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	var (
		srv  Conn
		aerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, aerr = l.Accept()
	}()
	cli, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatalf("kzc dial: %v", err)
	}
	wg.Wait()
	if aerr != nil {
		t.Fatalf("kzc accept: %v", aerr)
	}
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

// TestKZCStreamMode: a connection whose first bytes are not the ZC
// preamble never promotes (no header on the wire, SO_ZEROCOPY off) and
// behaves like plain TCP in both directions — the control path.
func TestKZCStreamMode(t *testing.T) {
	cli, srv := kzcPair(t, &KZC{})
	msg := []byte("GIOP control traffic")
	if _, err := cli.Write(msg); err != nil {
		t.Fatalf("client write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("control bytes corrupted")
	}
	if _, err := srv.WriteGather([]byte("re"), []byte("ply")); err != nil {
		t.Fatalf("server gather: %v", err)
	}
	got = make([]byte, 5)
	if _, err := io.ReadFull(cli, got); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if string(got) != "reply" {
		t.Fatalf("reply = %q", got)
	}
	if cli.(*kzcConn).zcOn.Load() || srv.(*kzcConn).zcOn.Load() {
		t.Fatal("stream-mode conn enabled SO_ZEROCOPY")
	}
	// A zero-copy send on an unpromoted conn must decline cleanly.
	if ok, err := cli.(*kzcConn).WriteZeroCopy(msg, func(bool) {}); ok || !errors.Is(err, ErrZeroCopyUnavailable) {
		t.Fatalf("unpromoted WriteZeroCopy: ok=%v err=%v", ok, err)
	}
}

// TestKZCPromotionThresholdNegotiation: a ZCDC first write promotes the
// dialer, the acceptor strips the 16-byte header and adopts the
// dialer's threshold, and the app-level byte stream is unchanged.
func TestKZCPromotionThresholdNegotiation(t *testing.T) {
	cli, srv := kzcPair(t, &KZC{Threshold: 12345})
	if _, err := cli.Write(preamble(0)); err != nil {
		t.Fatalf("preamble write: %v", err)
	}
	got := make([]byte, 12)
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatalf("server preamble read: %v", err)
	}
	if !bytes.Equal(got, preamble(0)) {
		t.Fatal("preamble corrupted (promotion header leaked into the stream?)")
	}
	if th := srv.(*kzcConn).ZeroCopyThreshold(); th != 12345 {
		t.Fatalf("acceptor threshold = %d, want 12345", th)
	}
	if !cli.(*kzcConn).zcOn.Load() {
		t.Fatal("dialer did not enable SO_ZEROCOPY on promotion")
	}
	if !srv.(*kzcConn).zcOn.Load() {
		t.Fatal("acceptor did not enable SO_ZEROCOPY on probe")
	}
}

// promoteKzc walks a pair through the ZCDC promotion handshake.
func promoteKzc(t *testing.T, cli, srv Conn) {
	t.Helper()
	if _, err := cli.Write(preamble(0)); err != nil {
		t.Fatalf("preamble: %v", err)
	}
	if _, err := io.ReadFull(srv, make([]byte, 12)); err != nil {
		t.Fatalf("server preamble: %v", err)
	}
}

// TestKZCWriteZeroCopyCompletion: a promoted send delivers the bytes
// intact and fires the completion callback exactly once (on loopback
// the kernel reports it as copied, which still counts as completed).
func TestKZCWriteZeroCopyCompletion(t *testing.T) {
	cli, srv := kzcPair(t, &KZC{Threshold: 4096})
	promoteKzc(t, cli, srv)
	payload := bytes.Repeat([]byte{0xC7}, 64<<10)
	var fired atomic.Int32
	got := make([]byte, len(payload))
	rdone := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(srv, got)
		rdone <- err
	}()
	ok, err := cli.(*kzcConn).WriteZeroCopy(payload, func(copied bool) {
		fired.Add(1)
	})
	if !ok || err != nil {
		t.Fatalf("WriteZeroCopy: ok=%v err=%v", ok, err)
	}
	if err := <-rdone; err != nil {
		t.Fatalf("server read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted through MSG_ZEROCOPY")
	}
	// Loopback completions land a few ms after the send; the background
	// reaper must deliver exactly one callback.
	deadline := time.Now().Add(5 * time.Second)
	for fired.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("completion callback never fired")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	if n := fired.Load(); n != 1 {
		t.Fatalf("completion fired %d times, want 1", n)
	}
}

// TestKZCDisableFallsBack: Disable models a kernel without SO_ZEROCOPY.
// The conn still promotes and carries plain traffic, but WriteZeroCopy
// reports ErrZeroCopyUnavailable without writing or firing done.
func TestKZCDisableFallsBack(t *testing.T) {
	cli, srv := kzcPair(t, &KZC{Disable: true})
	promoteKzc(t, cli, srv)
	ok, err := cli.(*kzcConn).WriteZeroCopy(make([]byte, 64<<10), func(bool) {
		t.Error("done fired on a declined send")
	})
	if ok || !errors.Is(err, ErrZeroCopyUnavailable) {
		t.Fatalf("disabled WriteZeroCopy: ok=%v err=%v", ok, err)
	}
	// The plain write path still works end to end.
	if _, err := cli.Write([]byte("still a stream")); err != nil {
		t.Fatalf("plain write: %v", err)
	}
	got := make([]byte, 14)
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got) != "still a stream" {
		t.Fatalf("got %q", got)
	}
}

// TestKZCSendFile: a file region travels disk→wire byte-identical,
// including a sub-range with a non-zero offset.
func TestKZCSendFile(t *testing.T) {
	cli, srv := kzcPair(t, &KZC{})
	promoteKzc(t, cli, srv)
	body := make([]byte, 2<<20)
	for i := range body {
		body[i] = byte(i * 13)
	}
	path := filepath.Join(t.TempDir(), "payload.bin")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, r := range []struct{ off, n int64 }{
		{0, int64(len(body))},
		{4096, 100_000},
	} {
		got := make([]byte, r.n)
		rdone := make(chan error, 1)
		go func() {
			_, err := io.ReadFull(srv, got)
			rdone <- err
		}()
		sent, err := cli.(*kzcConn).SendFile(f, r.off, r.n)
		if err != nil || sent != r.n {
			t.Fatalf("SendFile(off=%d,n=%d): sent=%d err=%v", r.off, r.n, sent, err)
		}
		if err := <-rdone; err != nil {
			t.Fatalf("server read: %v", err)
		}
		if !bytes.Equal(got, body[r.off:r.off+r.n]) {
			t.Fatalf("sendfile region [%d,%d) corrupted", r.off, r.off+r.n)
		}
	}
}

// TestKZCCopiedLimitDegrades: on loopback every completion is copied,
// so CopiedLimit=1 must degrade the connection to
// ErrZeroCopyUnavailable after the first completion is reaped.
func TestKZCCopiedLimitDegrades(t *testing.T) {
	cli, srv := kzcPair(t, &KZC{Threshold: 4096, CopiedLimit: 1})
	promoteKzc(t, cli, srv)
	go io.Copy(io.Discard, srv)
	payload := make([]byte, 64<<10)
	kc := cli.(*kzcConn)
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok, err := kc.WriteZeroCopy(payload, func(bool) {})
		if !ok {
			if !errors.Is(err, ErrZeroCopyUnavailable) {
				t.Fatalf("degraded error = %v, want ErrZeroCopyUnavailable", err)
			}
			return // degraded, as required
		}
		if err != nil {
			t.Fatalf("WriteZeroCopy: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("connection never degraded despite copied completions")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestKZCFaultInjection drives the kernel-ZC fault kinds end to end.
func TestKZCFaultInjection(t *testing.T) {
	t.Run("enobufs", func(t *testing.T) {
		inj := NewFaultInjector(1).Add(Rule{Op: OpWrite, Class: ClassKzc, Kind: FaultENOBUFS, Nth: 1})
		cli, srv := kzcPair(t, &KZC{Threshold: 4096, Faults: inj})
		promoteKzc(t, cli, srv)
		payload := bytes.Repeat([]byte{0x11}, 32<<10)
		var fired atomic.Int32
		got := make([]byte, len(payload))
		rdone := make(chan error, 1)
		go func() {
			_, err := io.ReadFull(srv, got)
			rdone <- err
		}()
		ok, err := cli.(*kzcConn).WriteZeroCopy(payload, func(copied bool) {
			if !copied {
				t.Error("ENOBUFS degradation must complete as copied")
			}
			fired.Add(1)
		})
		if !ok || err != nil {
			t.Fatalf("ENOBUFS send: ok=%v err=%v", ok, err)
		}
		if fired.Load() != 1 {
			t.Fatal("ENOBUFS degradation must complete immediately")
		}
		if err := <-rdone; err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload corrupted on the ENOBUFS plain-write path")
		}
	})
	t.Run("drop-completion", func(t *testing.T) {
		inj := NewFaultInjector(1).Add(Rule{Op: OpWrite, Class: ClassKzc, Kind: FaultDropCompletion, Nth: 1})
		cli, srv := kzcPair(t, &KZC{Threshold: 4096, Faults: inj})
		promoteKzc(t, cli, srv)
		payload := bytes.Repeat([]byte{0x22}, 32<<10)
		var fired atomic.Int32
		got := make([]byte, len(payload))
		rdone := make(chan error, 1)
		go func() {
			_, err := io.ReadFull(srv, got)
			rdone <- err
		}()
		ok, err := cli.(*kzcConn).WriteZeroCopy(payload, func(bool) { fired.Add(1) })
		if !ok || err != nil {
			t.Fatalf("dropped-completion send: ok=%v err=%v", ok, err)
		}
		if err := <-rdone; err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload corrupted")
		}
		// The bytes arrived but the completion must never: reclaiming the
		// buffer is the caller's lease sweeper's job.
		time.Sleep(50 * time.Millisecond)
		if fired.Load() != 0 {
			t.Fatal("dropped completion fired anyway")
		}
	})
	t.Run("short-splice", func(t *testing.T) {
		inj := NewFaultInjector(1).Add(Rule{Op: OpWrite, Class: ClassKzc, Kind: FaultShortSplice, Nth: 1})
		cli, srv := kzcPair(t, &KZC{Faults: inj})
		promoteKzc(t, cli, srv)
		go io.Copy(io.Discard, srv)
		body := make([]byte, 1<<20)
		path := filepath.Join(t.TempDir(), "f.bin")
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		sent, err := cli.(*kzcConn).SendFile(f, 0, int64(len(body)))
		if err == nil || !strings.Contains(err.Error(), "short") {
			t.Fatalf("short splice: err=%v", err)
		}
		if sent != int64(len(body))/2 {
			t.Fatalf("short splice sent %d, want %d", sent, len(body)/2)
		}
	})
	t.Run("reset", func(t *testing.T) {
		inj := NewFaultInjector(1).Add(Rule{Op: OpWrite, Class: ClassKzc, Kind: FaultReset, Nth: 1})
		cli, srv := kzcPair(t, &KZC{Threshold: 4096, Faults: inj})
		promoteKzc(t, cli, srv)
		var fired atomic.Int32
		ok, err := cli.(*kzcConn).WriteZeroCopy(make([]byte, 32<<10), func(bool) { fired.Add(1) })
		if !ok || err == nil {
			t.Fatalf("reset send: ok=%v err=%v, want ok with error", ok, err)
		}
		if fired.Load() != 1 {
			t.Fatal("reset must still complete the callback (stream torn down)")
		}
	})
}

// TestKZCSchemeDispatch: FromAddr resolves kzc:// URIs to the KZC
// transport, and Listen/Dial round-trip the scheme-qualified form.
func TestKZCSchemeDispatch(t *testing.T) {
	tr, rest, err := FromAddr("kzc://127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("FromAddr: %v", err)
	}
	if tr.Name() != "kzc" || rest != "127.0.0.1:0" {
		t.Fatalf("FromAddr = %s,%q", tr.Name(), rest)
	}
	l, err := tr.Listen(rest)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	if !strings.HasPrefix(l.Addr(), "kzc://") {
		t.Fatalf("listener addr %q not scheme-qualified", l.Addr())
	}
	go l.Accept()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatalf("dial scheme-qualified addr: %v", err)
	}
	c.Close()
}

// TestKZCMergedCompletionSpanningOpenWrite regression-tests the
// completion/registration race: the kernel merges adjacent completion
// ranges, so the reaper can see a single range covering a finished
// write's sequences AND sequences of a write whose send loop is still
// running. The open write's portion must be absorbed (not dropped) and
// its callback held until the loop closes the entry.
func TestKZCMergedCompletionSpanningOpenWrite(t *testing.T) {
	cli, srv := kzcPair(t, &KZC{Threshold: 4096})
	promoteKzc(t, cli, srv)
	c := cli.(*kzcConn)
	fireAll := func(fired []*kzcPending) {
		for _, p := range fired {
			cp, d := p.copied, p.done
			c.recyclePending(p)
			c.outstanding.Add(-1)
			if d != nil {
				d(cp)
			}
		}
	}
	var aFired, bFired atomic.Int32
	// Write A: two sequences (0,1), send loop finished.
	a := c.reservePending(func(bool) { aFired.Add(1) })
	c.reserveSeq(a)
	c.reserveSeq(a)
	c.closePending(a, false)
	// Write B: one sequence (2) so far, send loop still running.
	b := c.reservePending(func(bool) { bFired.Add(1) })
	c.reserveSeq(b)
	// The kernel reports one merged range [0,2] spanning both writes.
	c.cmu.Lock()
	fired := c.completeRangeLocked(0, 2, true)
	c.cmu.Unlock()
	fireAll(fired)
	if n := aFired.Load(); n != 1 {
		t.Fatalf("finished write fired %d times, want 1", n)
	}
	if bFired.Load() != 0 {
		t.Fatal("open write fired before its send loop closed")
	}
	// B consumes one more sequence; its completion arrives while the
	// loop is still open, then the loop ends.
	c.reserveSeq(b)
	c.cmu.Lock()
	fired = c.completeRangeLocked(3, 3, true)
	c.cmu.Unlock()
	if len(fired) != 0 {
		t.Fatal("open entry returned as complete")
	}
	c.closePending(b, false)
	if n := bFired.Load(); n != 1 {
		t.Fatalf("open write fired %d times after close, want 1", n)
	}
	if n := c.outstanding.Load(); n != 0 {
		t.Fatalf("outstanding = %d after all completions, want 0", n)
	}
	c.cmu.Lock()
	npend := len(c.pend)
	c.cmu.Unlock()
	if npend != 0 {
		t.Fatalf("%d pending entries leaked", npend)
	}
}

// TestKZCUnreserveSeqRollsBack: a sendmsg that fails outright consumes
// no kernel sequence; the mirror counter and the pending entry must
// roll back so the next send reuses the sequence.
func TestKZCUnreserveSeqRollsBack(t *testing.T) {
	cli, srv := kzcPair(t, &KZC{Threshold: 4096})
	promoteKzc(t, cli, srv)
	c := cli.(*kzcConn)
	var fired atomic.Int32
	p := c.reservePending(func(bool) { fired.Add(1) })
	c.reserveSeq(p)
	c.unreserveSeq(p)
	c.cmu.Lock()
	seq := c.sendSeq
	c.cmu.Unlock()
	if seq != 0 {
		t.Fatalf("sendSeq = %d after rollback, want 0", seq)
	}
	// A completion range containing sequence 0 must not match the
	// rolled-back (now sequence-less) entry.
	c.cmu.Lock()
	fired2 := c.completeRangeLocked(0, 0, false)
	c.cmu.Unlock()
	if len(fired2) != 0 {
		t.Fatal("sequence-less entry matched a completion range")
	}
	c.closePending(p, true)
	if n := fired.Load(); n != 1 {
		t.Fatalf("done fired %d times, want 1 (immediately at close)", n)
	}
	if n := c.outstanding.Load(); n != 0 {
		t.Fatalf("outstanding = %d, want 0", n)
	}
}

// TestKZCThresholdClampsHostileValue: a peer-supplied threshold that
// would wrap negative through the int32 store (forcing every deposit
// onto the MSG_ZEROCOPY path) is ignored in favor of the local default.
func TestKZCThresholdClampsHostileValue(t *testing.T) {
	tr := &KZC{}
	l, err := tr.Listen("")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	var (
		srv  Conn
		aerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, aerr = l.Accept()
	}()
	nc, err := net.Dial("tcp", trimKzc(l.Addr()))
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	defer nc.Close()
	wg.Wait()
	if aerr != nil {
		t.Fatalf("accept: %v", aerr)
	}
	defer srv.Close()
	var hdr [kzcPromoLen]byte
	copy(hdr[:], kzcPromoMagic)
	binary.LittleEndian.PutUint32(hdr[8:], 1<<31) // wraps negative as int32
	if _, err := nc.Write(append(hdr[:], "payload"...)); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, 7)
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if th := srv.(*kzcConn).ZeroCopyThreshold(); th != DefaultZeroCopyThreshold {
		t.Fatalf("threshold = %d after hostile header, want default %d",
			th, DefaultZeroCopyThreshold)
	}
}

// TestKZCCloseAbortsWhileCompletionsOutstanding: with zero-copy
// completions outstanding the kernel's send queue may still reference
// caller pages, so Close must abort the connection (RST, purging the
// queue) rather than close gracefully — the peer sees a reset, not
// EOF. With nothing outstanding the close stays graceful.
func TestKZCCloseAbortsWhileCompletionsOutstanding(t *testing.T) {
	t.Run("outstanding-rst", func(t *testing.T) {
		cli, srv := kzcPair(t, &KZC{Threshold: 4096})
		promoteKzc(t, cli, srv)
		c := cli.(*kzcConn)
		p := c.reservePending(func(bool) {})
		c.reserveSeq(p) // a completion that will never settle
		if err := cli.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		_, err := io.ReadFull(srv, make([]byte, 1))
		if err == nil || errors.Is(err, io.EOF) {
			t.Fatalf("peer observed graceful close (err=%v), want connection reset", err)
		}
	})
	t.Run("idle-graceful", func(t *testing.T) {
		cli, srv := kzcPair(t, &KZC{Threshold: 4096})
		promoteKzc(t, cli, srv)
		if err := cli.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if _, err := io.ReadFull(srv, make([]byte, 1)); !errors.Is(err, io.EOF) {
			t.Fatalf("peer err = %v, want io.EOF (graceful close)", err)
		}
	})
}

// TestKZCReaperWakesAfterIdle: once every completion settles the reaper
// parks (no wakeups on an idle connection); a later write must wake it
// and still get its completion callback.
func TestKZCReaperWakesAfterIdle(t *testing.T) {
	cli, srv := kzcPair(t, &KZC{Threshold: 4096})
	promoteKzc(t, cli, srv)
	go io.Copy(io.Discard, srv)
	kc := cli.(*kzcConn)
	payload := make([]byte, 64<<10)
	for round := 0; round < 2; round++ {
		var fired atomic.Int32
		ok, err := kc.WriteZeroCopy(payload, func(bool) { fired.Add(1) })
		if !ok || err != nil {
			t.Fatalf("round %d WriteZeroCopy: ok=%v err=%v", round, ok, err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for fired.Load() == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d completion never fired", round)
			}
			time.Sleep(time.Millisecond)
		}
		// Let the reaper drain and park before the next round.
		for kc.outstanding.Load() != 0 && !time.Now().After(deadline) {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestKZCWriteZeroCopyGather: a vectored train goes out in one
// MSG_ZEROCOPY sendmsg, arrives byte-identical and in order, and the
// single train completion fires exactly once.
func TestKZCWriteZeroCopyGather(t *testing.T) {
	cli, srv := kzcPair(t, &KZC{Threshold: 4096})
	promoteKzc(t, cli, srv)
	segs := [][]byte{
		bytes.Repeat([]byte{0x11}, 64<<10),
		bytes.Repeat([]byte{0x22}, 7),
		nil,
		bytes.Repeat([]byte{0x33}, 128<<10),
	}
	var want []byte
	for _, s := range segs {
		want = append(want, s...)
	}
	var fired atomic.Int32
	got := make([]byte, len(want))
	rdone := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(srv, got)
		rdone <- err
	}()
	zgw, okIface := Conn(cli).(ZeroCopyGatherWriter)
	if !okIface {
		t.Fatal("kzc conn does not implement ZeroCopyGatherWriter")
	}
	ok, err := zgw.WriteZeroCopyGather(segs, func(copied bool) { fired.Add(1) })
	if !ok || err != nil {
		t.Fatalf("WriteZeroCopyGather: ok=%v err=%v", ok, err)
	}
	if err := <-rdone; err != nil {
		t.Fatalf("server read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("train corrupted through vectored MSG_ZEROCOPY")
	}
	deadline := time.Now().Add(5 * time.Second)
	for fired.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("train completion never fired")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	if n := fired.Load(); n != 1 {
		t.Fatalf("train completion fired %d times, want 1", n)
	}
}
