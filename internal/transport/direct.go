package transport

// Releaser returns a zero-copy view to its owner. It mirrors
// zcbuf.Releaser structurally, so a transport-issued release token can
// ride inside a zcbuf.Buffer without an adapter allocation.
type Releaser interface {
	Release()
}

// DirectReader is implemented by connections that can hand the caller
// a view of the next n received payload bytes without copying them —
// the shared-memory data plane's claim primitive. ok reports whether
// the view was available: false means the caller must fall back to the
// copying Read path (for example, the stream is not ring-backed, or
// the next record does not align with n). The view stays valid until
// release.Release() is called.
type DirectReader interface {
	ReadDirect(n int) (view []byte, release Releaser, ok bool, err error)
}
