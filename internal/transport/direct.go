package transport

import (
	"errors"
	"os"
)

// Releaser returns a zero-copy view to its owner. It mirrors
// zcbuf.Releaser structurally, so a transport-issued release token can
// ride inside a zcbuf.Buffer without an adapter allocation.
type Releaser interface {
	Release()
}

// DirectReader is implemented by connections that can hand the caller
// a view of the next n received payload bytes without copying them —
// the shared-memory data plane's claim primitive. ok reports whether
// the view was available: false means the caller must fall back to the
// copying Read path (for example, the stream is not ring-backed, or
// the next record does not align with n). The view stays valid until
// release.Release() is called.
type DirectReader interface {
	ReadDirect(n int) (view []byte, release Releaser, ok bool, err error)
}

// DefaultZeroCopyThreshold is the minimum payload size for which a
// kernel zero-copy send (MSG_ZEROCOPY) is attempted when no explicit
// threshold is configured or negotiated. Below it, page pinning and
// completion bookkeeping cost more than the copy they save.
const DefaultZeroCopyThreshold = 32 << 10

// ErrZeroCopyUnavailable reports that a connection cannot perform
// kernel zero-copy sends — the kernel rejected SO_ZEROCOPY, the
// connection degraded after copied completions, or the stream never
// promoted to a data channel. Callers must fall back to a plain write
// (for the ORB: the standard marshaled path).
var ErrZeroCopyUnavailable = errors.New("transport: kernel zero-copy unavailable")

// ErrKernelZCUnsupported reports that the kzc transport is not
// available on this platform (non-Linux builds).
var ErrKernelZCUnsupported = errors.New("transport: kzc requires linux (MSG_ZEROCOPY + sendfile)")

// ZeroCopyWriter is implemented by connections that can send a payload
// with kernel zero-copy (MSG_ZEROCOPY): the kernel pins the pages and
// transmits them without a user-to-kernel copy, and done fires exactly
// once when the kernel has released them (the errqueue completion).
// done(copied=true) means the kernel copied after all (loopback, or a
// driver without SG support) — the send still succeeded.
//
// ok=false means nothing was written and done will never fire; err is
// then ErrZeroCopyUnavailable (or wraps it) and the caller must take
// its fallback path. ok=true with err!=nil means the stream is broken
// mid-payload; done still fires exactly once (possibly only via the
// caller's lease sweeper if the kernel never reports).
type ZeroCopyWriter interface {
	WriteZeroCopy(p []byte, done func(copied bool)) (ok bool, err error)
	// ZeroCopyThreshold returns the negotiated minimum payload size for
	// zero-copy sends on this connection.
	ZeroCopyThreshold() int
}

// FileSender is implemented by connections that can transmit a region
// of an open file directly disk→wire (sendfile/splice), so the bytes
// never enter user space.
type FileSender interface {
	SendFile(f *os.File, off, n int64) (int64, error)
}

// ZeroCopyGatherWriter is implemented by zero-copy connections that
// can send a whole scatter/gather train in one vectored MSG_ZEROCOPY
// sendmsg: the segments share a single completion sequence, so one
// errqueue range completes the entire train (the caller fans that out
// to per-buffer callbacks). Semantics of ok/err/done match
// ZeroCopyWriter, with done firing once for the train.
type ZeroCopyGatherWriter interface {
	ZeroCopyWriter
	WriteZeroCopyGather(segs [][]byte, done func(copied bool)) (ok bool, err error)
}
