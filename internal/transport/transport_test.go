package transport

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

// exerciseTransport runs a generic send/receive conversation over t.
func exerciseTransport(t *testing.T, tr Transport, addr string) {
	t.Helper()
	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	payload := bytes.Repeat([]byte{0xAB}, 100000)
	header := []byte("HDR0")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		defer c.Close()
		got := make([]byte, len(header)+len(payload))
		if _, err := io.ReadFull(c, got); err != nil {
			t.Errorf("ReadFull: %v", err)
			return
		}
		if !bytes.Equal(got[:4], header) || !bytes.Equal(got[4:], payload) {
			t.Error("payload corrupted in transit")
		}
		if _, err := c.Write([]byte("ACK!")); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()

	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	n, err := c.WriteGather(header, nil, payload) // nil segment must be skipped
	if err != nil {
		t.Fatalf("WriteGather: %v", err)
	}
	if n != int64(len(header)+len(payload)) {
		t.Fatalf("WriteGather wrote %d", n)
	}
	ack := make([]byte, 4)
	if _, err := io.ReadFull(c, ack); err != nil {
		t.Fatalf("read ack: %v", err)
	}
	if string(ack) != "ACK!" {
		t.Fatalf("ack %q", ack)
	}
	wg.Wait()
}

func TestTCPTransport(t *testing.T) {
	exerciseTransport(t, &TCP{Stats: &Stats{}}, "127.0.0.1:0")
}

func TestInProcTransport(t *testing.T) {
	exerciseTransport(t, &InProc{Stats: &Stats{}}, "")
}

func TestCopyingOverTCP(t *testing.T) {
	exerciseTransport(t, &Copying{Inner: &TCP{}, SendCopies: 1, RecvCopies: 1, Stats: &Stats{}}, "127.0.0.1:0")
}

func TestCopyingOverInProc(t *testing.T) {
	exerciseTransport(t, &Copying{Inner: &InProc{}, SendCopies: 2, RecvCopies: 1, Stats: &Stats{}}, "")
}

func TestTCPStatsCounted(t *testing.T) {
	st := &Stats{}
	tr := &TCP{Stats: st}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		_, _ = io.Copy(io.Discard, c)
	}()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteGather([]byte("abc"), []byte("defg")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	<-done
	s := st.Snapshot()
	if s.BytesSent != 7 {
		t.Fatalf("BytesSent=%d", s.BytesSent)
	}
	if s.GatherSegments != 2 {
		t.Fatalf("GatherSegments=%d", s.GatherSegments)
	}
}

func TestCopyingChargesEmulatedCopies(t *testing.T) {
	st := &Stats{}
	tr := &Copying{Inner: &InProc{}, SendCopies: 2, RecvCopies: 1, Stats: st}
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	msg := bytes.Repeat([]byte{1}, 1000)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, len(msg))
		_, _ = io.ReadFull(c, buf)
	}()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	<-done
	c.Close()
	// Send side: 2 copies of 1000 bytes. Receive side: 1 copy of up to
	// 1000 bytes (possibly split across reads, but totals must match).
	if got := st.EmulatedCopyBytes.Load(); got != 3000 {
		t.Fatalf("EmulatedCopyBytes=%d want 3000", got)
	}
}

func TestInProcDialUnknownAddress(t *testing.T) {
	tr := &InProc{}
	if _, err := tr.Dial("nope"); err == nil {
		t.Fatal("want error dialing unknown inproc address")
	}
}

func TestInProcDuplicateListen(t *testing.T) {
	tr := &InProc{}
	l, err := tr.Listen("dup")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("dup"); err == nil {
		t.Fatal("want duplicate-address error")
	}
	l.Close()
	// After close the address is free again.
	l2, err := tr.Listen("dup")
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	l2.Close()
}

func TestInProcListenerCloseUnblocksAccept(t *testing.T) {
	tr := &InProc{}
	l, err := tr.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errc <- err
	}()
	l.Close()
	if err := <-errc; err == nil {
		t.Fatal("Accept must fail after Close")
	}
}

func TestInProcAutoAddressesUnique(t *testing.T) {
	tr := &InProc{}
	l1, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	l2, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l1.Addr() == l2.Addr() {
		t.Fatalf("duplicate auto addresses %q", l1.Addr())
	}
}

func TestTransportNames(t *testing.T) {
	if (&TCP{}).Name() != "tcp" {
		t.Fatal("tcp name")
	}
	if (&InProc{}).Name() != "inproc" {
		t.Fatal("inproc name")
	}
	if (&Copying{Inner: &TCP{}}).Name() != "copying(tcp)" {
		t.Fatal("copying name")
	}
}
