// Package transport abstracts the byte-stream substrate under the ORB:
// plain TCP, an in-process pipe for tests and single-host clusters, and
// a "copying stack" shim that emulates the per-byte costs of the
// standard 2003-era TCP/IP path the paper benchmarks against.
//
// The zero-copy discipline of the paper maps onto two primitives:
//
//   - WriteGather: hand the transport a list of segments (header +
//     payload references) to send as one logical message without first
//     assembling them in a contiguous buffer. On real TCP this becomes
//     writev via net.Buffers; the payload bytes are never copied in
//     user space.
//   - ReadFull: deposit exactly n bytes straight into a caller-supplied
//     (page-aligned) buffer — the receive half of direct deposit.
//
// The Copying wrapper adds explicit memcpy passes on both sides,
// emulating the kernel socket-buffer copies that the paper's
// speculative-defragmentation stack removes; it lets the benchmark
// harness reproduce the standard-stack/zero-copy-stack contrast of
// Figure 6 inside one address space.
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
)

// Conn is a reliable byte-stream connection.
type Conn interface {
	io.Reader
	io.Writer
	io.Closer
	// WriteGather writes the segments back to back as one logical
	// message. Implementations must not retain the segments after
	// returning and should avoid copying them where the OS allows.
	WriteGather(segs ...[]byte) (int64, error)
	// LocalAddr and RemoteAddr return endpoint descriptions.
	LocalAddr() string
	RemoteAddr() string
}

// RawConner is implemented by connections that can expose their
// underlying OS socket for readiness registration — the hook the
// server-side event engine (internal/orb, docs/PERF.md "Event-driven
// connection engine") uses to park idle connections in an epoll set
// instead of a goroutine. Wrappers that intercept Read (Copying,
// Faulty) deliberately do NOT forward it: the engine's raw socket
// reads would bypass their instrumentation, so wrapped connections
// fall back to the goroutine-per-conn tier.
type RawConner interface {
	SyscallConn() (syscall.RawConn, error)
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr returns the bound address in a form Dial accepts.
	Addr() string
}

// Transport creates listeners and outbound connections.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
	// Name identifies the transport ("tcp", "inproc", "copying(tcp)").
	Name() string
}

// Stats counts transport activity. All fields are updated atomically
// and may be read concurrently.
type Stats struct {
	BytesSent      atomic.Int64
	BytesRecv      atomic.Int64
	Writes         atomic.Int64
	Reads          atomic.Int64
	GatherSegments atomic.Int64
	// EmulatedCopyBytes counts bytes passed through the Copying
	// wrapper's explicit memcpy stages (the simulated kernel copies).
	EmulatedCopyBytes atomic.Int64
}

// Snapshot returns a plain-struct copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		BytesSent:         s.BytesSent.Load(),
		BytesRecv:         s.BytesRecv.Load(),
		Writes:            s.Writes.Load(),
		Reads:             s.Reads.Load(),
		GatherSegments:    s.GatherSegments.Load(),
		EmulatedCopyBytes: s.EmulatedCopyBytes.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	BytesSent, BytesRecv, Writes, Reads int64
	GatherSegments, EmulatedCopyBytes   int64
}

// ---------------------------------------------------------------------------
// TCP

// TCP is the production transport: stream sockets with writev-based
// gather sends.
type TCP struct {
	// Stats, if non-nil, receives counter updates from all
	// connections created by this transport.
	Stats *Stats
}

// Name implements Transport.
func (t *TCP) Name() string { return "tcp" }

// Listen implements Transport.
func (t *TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l, stats: t.Stats}, nil
}

// Dial implements Transport.
func (t *TCP) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tuneTCP(tc)
	}
	return &tcpConn{c: c, stats: t.Stats}, nil
}

// tcpSockBuf sizes each socket buffer to hold a whole deposit train so a
// gather writev returns without lock-stepping the writer and reader
// through the kernel's (small) autotuned default. Clamped by the kernel
// to net.core.{r,w}mem_max; oversizing is harmless.
const tcpSockBuf = 4 << 20

func tuneTCP(tc *net.TCPConn) {
	// Latency matters for the control path; the data path sends
	// large gathers that fill frames anyway.
	_ = tc.SetNoDelay(true)
	_ = tc.SetReadBuffer(tcpSockBuf)
	_ = tc.SetWriteBuffer(tcpSockBuf)
}

type tcpListener struct {
	l     net.Listener
	stats *Stats
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tuneTCP(tc)
	}
	return &tcpConn{c: c, stats: l.stats}, nil
}

func (l *tcpListener) Close() error { return l.l.Close() }
func (l *tcpListener) Addr() string { return l.l.Addr().String() }

type tcpConn struct {
	c     net.Conn
	stats *Stats
	wmu   sync.Mutex // serializes writes so gathers stay contiguous
	// gbufs is the gather scratch, guarded by wmu; reusing it keeps
	// steady-state gather writes from allocating a net.Buffers per call.
	gbufs net.Buffers
}

func (c *tcpConn) Read(p []byte) (int, error) {
	n, err := c.c.Read(p)
	if c.stats != nil && n > 0 {
		c.stats.BytesRecv.Add(int64(n))
		c.stats.Reads.Add(1)
	}
	return n, err
}

func (c *tcpConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	n, err := c.c.Write(p)
	c.wmu.Unlock()
	if c.stats != nil && n > 0 {
		c.stats.BytesSent.Add(int64(n))
		c.stats.Writes.Add(1)
	}
	return n, err
}

func (c *tcpConn) WriteGather(segs ...[]byte) (int64, error) {
	c.wmu.Lock()
	bufs := c.gbufs[:0]
	var total int64
	for _, s := range segs {
		if len(s) == 0 {
			continue
		}
		bufs = append(bufs, s)
		total += int64(len(s))
	}
	c.gbufs = bufs // retain the (possibly grown) scratch array
	nsegs := len(bufs)
	n, err := bufs.WriteTo(c.c)
	// WriteTo consumed the local copy; drop the scratch's references so
	// it does not pin caller buffers until the next write.
	clear(c.gbufs[:nsegs])
	c.gbufs = c.gbufs[:0]
	c.wmu.Unlock()
	if c.stats != nil {
		c.stats.BytesSent.Add(n)
		c.stats.Writes.Add(1)
		c.stats.GatherSegments.Add(int64(len(segs)))
	}
	if err != nil {
		return n, fmt.Errorf("transport: gather write: %w", err)
	}
	if n != total {
		return n, fmt.Errorf("transport: gather write short: %d of %d", n, total)
	}
	return n, nil
}

func (c *tcpConn) Close() error       { return c.c.Close() }
func (c *tcpConn) LocalAddr() string  { return c.c.LocalAddr().String() }
func (c *tcpConn) RemoteAddr() string { return c.c.RemoteAddr().String() }

// SyscallConn implements RawConner: TCP connections expose their socket
// so the server-side event engine can register them for readiness.
func (c *tcpConn) SyscallConn() (syscall.RawConn, error) {
	sc, ok := c.c.(syscall.Conn)
	if !ok {
		return nil, errors.New("transport: connection does not expose a raw socket")
	}
	return sc.SyscallConn()
}

// ---------------------------------------------------------------------------
// In-process transport

// InProc is an in-memory transport keyed by arbitrary address strings.
// It backs single-process clusters (the simulated testbed) and tests.
type InProc struct {
	Stats *Stats

	mu        sync.Mutex
	listeners map[string]*inprocListener
	nextAuto  int
}

// Name implements Transport.
func (t *InProc) Name() string { return "inproc" }

// Listen implements Transport. The empty address or ":0" allocates a
// fresh unique address.
func (t *InProc) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.listeners == nil {
		t.listeners = make(map[string]*inprocListener)
	}
	if addr == "" || addr == ":0" {
		t.nextAuto++
		addr = fmt.Sprintf("inproc-%d", t.nextAuto)
	}
	if _, exists := t.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: inproc address %q in use", addr)
	}
	l := &inprocListener{t: t, addr: addr, ch: make(chan Conn, 16)}
	t.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (t *InProc) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	l := t.listeners[addr]
	t.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("transport: inproc address %q not listening", addr)
	}
	a, b := net.Pipe()
	ca := &pipeConn{c: a, stats: t.Stats, local: "inproc-client", remote: addr}
	cb := &pipeConn{c: b, stats: t.Stats, local: addr, remote: "inproc-client"}
	if err := l.deliver(cb); err != nil {
		_ = a.Close()
		_ = b.Close()
		return nil, err
	}
	return ca, nil
}

func (t *InProc) remove(addr string) {
	t.mu.Lock()
	delete(t.listeners, addr)
	t.mu.Unlock()
}

type inprocListener struct {
	t    *InProc
	addr string
	ch   chan Conn

	// mu serializes delivery against Close so a dial racing a shutdown
	// gets a clean error instead of a send on a closed channel.
	mu     sync.Mutex
	closed bool
}

// deliver queues an accepted connection, failing (instead of
// panicking or hanging) when the listener has been closed.
func (l *inprocListener) deliver(c Conn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("transport: inproc address %q not listening", l.addr)
	}
	select {
	case l.ch <- c:
		return nil
	default:
		return fmt.Errorf("transport: inproc accept queue full for %q", l.addr)
	}
}

func (l *inprocListener) Accept() (Conn, error) {
	c, ok := <-l.ch
	if !ok {
		return nil, errors.New("transport: inproc listener closed")
	}
	return c, nil
}

func (l *inprocListener) Close() error {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		l.t.remove(l.addr)
		close(l.ch)
	}
	l.mu.Unlock()
	// Connections already queued but never accepted would strand their
	// dialers mid-handshake; close them so the peer errors promptly.
	for c := range l.ch {
		_ = c.Close()
	}
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

type pipeConn struct {
	c             net.Conn
	stats         *Stats
	local, remote string
	wmu           sync.Mutex
}

func (c *pipeConn) Read(p []byte) (int, error) {
	n, err := c.c.Read(p)
	if c.stats != nil && n > 0 {
		c.stats.BytesRecv.Add(int64(n))
		c.stats.Reads.Add(1)
	}
	return n, err
}

func (c *pipeConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	n, err := c.c.Write(p)
	c.wmu.Unlock()
	if c.stats != nil && n > 0 {
		c.stats.BytesSent.Add(int64(n))
		c.stats.Writes.Add(1)
	}
	return n, err
}

func (c *pipeConn) WriteGather(segs ...[]byte) (int64, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var total int64
	for _, s := range segs {
		if len(s) == 0 {
			continue
		}
		n, err := c.c.Write(s)
		total += int64(n)
		if err != nil {
			return total, fmt.Errorf("transport: inproc gather write: %w", err)
		}
	}
	if c.stats != nil {
		c.stats.BytesSent.Add(total)
		c.stats.Writes.Add(1)
		c.stats.GatherSegments.Add(int64(len(segs)))
	}
	return total, nil
}

func (c *pipeConn) Close() error       { return c.c.Close() }
func (c *pipeConn) LocalAddr() string  { return c.local }
func (c *pipeConn) RemoteAddr() string { return c.remote }

// ---------------------------------------------------------------------------
// Copying stack shim

// Copying wraps another transport and performs SendCopies explicit
// buffer copies on every write and RecvCopies on every read,
// reproducing the per-byte cost profile of the standard (copying)
// TCP/IP stack of the paper's era: one user-to-kernel copy on send,
// one kernel-to-user copy on receive, plus an optional driver
// defragmentation copy. The zero-copy stack of [10] corresponds to
// wrapping with zero copies — i.e. not wrapping at all.
type Copying struct {
	Inner      Transport
	SendCopies int
	RecvCopies int
	Stats      *Stats
}

// Name implements Transport.
func (t *Copying) Name() string { return "copying(" + t.Inner.Name() + ")" }

// Listen implements Transport.
func (t *Copying) Listen(addr string) (Listener, error) {
	l, err := t.Inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &copyingListener{l: l, t: t}, nil
}

// Dial implements Transport.
func (t *Copying) Dial(addr string) (Conn, error) {
	c, err := t.Inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &copyingConn{c: c, t: t}, nil
}

type copyingListener struct {
	l Listener
	t *Copying
}

func (l *copyingListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return &copyingConn{c: c, t: l.t}, nil
}

func (l *copyingListener) Close() error { return l.l.Close() }
func (l *copyingListener) Addr() string { return l.l.Addr() }

type copyingConn struct {
	c       Conn
	t       *Copying
	sendBuf []byte
	recvBuf []byte
	wmu     sync.Mutex
	rmu     sync.Mutex
}

// churn performs k copy passes of p through a scratch buffer, charging
// the bytes to the stats. The scratch is reused so the shim measures
// copy bandwidth, not allocator throughput.
func (c *copyingConn) churn(scratch *[]byte, p []byte, k int) {
	if k <= 0 || len(p) == 0 {
		return
	}
	if cap(*scratch) < len(p) {
		*scratch = make([]byte, len(p))
	}
	buf := (*scratch)[:len(p)]
	for i := 0; i < k; i++ {
		copy(buf, p)
	}
	if c.t.Stats != nil {
		c.t.Stats.EmulatedCopyBytes.Add(int64(len(p)) * int64(k))
	}
}

func (c *copyingConn) Read(p []byte) (int, error) {
	n, err := c.c.Read(p)
	if n > 0 {
		c.rmu.Lock()
		c.churn(&c.recvBuf, p[:n], c.t.RecvCopies)
		c.rmu.Unlock()
	}
	return n, err
}

func (c *copyingConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	c.churn(&c.sendBuf, p, c.t.SendCopies)
	c.wmu.Unlock()
	return c.c.Write(p)
}

func (c *copyingConn) WriteGather(segs ...[]byte) (int64, error) {
	c.wmu.Lock()
	for _, s := range segs {
		c.churn(&c.sendBuf, s, c.t.SendCopies)
	}
	c.wmu.Unlock()
	return c.c.WriteGather(segs...)
}

func (c *copyingConn) Close() error       { return c.c.Close() }
func (c *copyingConn) LocalAddr() string  { return c.c.LocalAddr() }
func (c *copyingConn) RemoteAddr() string { return c.c.RemoteAddr() }
