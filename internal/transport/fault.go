// Fault injection: a transport wrapper that deterministically breaks
// connections at configurable points in the GIOP and ZC-deposit state
// machines. The chaos suite (internal/orb/chaos_test.go) drives the ORB
// through these faults to prove the retry/deadline/fallback machinery;
// the ttcp -chaos flag applies them to a live benchmark run.
//
// Faults are described by Rules and decided by a FaultInjector seeded
// with a fixed value, so a given schedule of transport events produces
// the same schedule of faults. Connections classify themselves lazily
// from the first bytes they carry — "ZCDC" (the deposit preamble) marks
// a data channel, anything else (normally a GIOP header) the control
// stream — so rules can target the control path, the deposit path, or
// both.
package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultKind selects what the injected fault does to the connection.
type FaultKind int

// Fault kinds.
const (
	// FaultReset closes the underlying connection and fails the
	// operation, like a TCP RST.
	FaultReset FaultKind = iota + 1
	// FaultTruncate lets TruncateAt bytes through, then closes: the
	// byte-level cut that desyncs a framed stream.
	FaultTruncate
	// FaultStall sleeps Delay before performing the operation.
	FaultStall
	// FaultSlow performs writes in Chunk-sized pieces with Delay
	// between them (reads just sleep Delay once).
	FaultSlow
	// FaultRefuse fails the operation without touching the connection
	// state of previously established conns; on Dial it models a
	// refused connection.
	FaultRefuse
	// FaultPeerKill simulates the shared-memory peer process dying:
	// the Unix control socket is torn down and the connection's dead
	// flag raised, so ring waiters on both sides unblock with
	// peer-dead errors.
	FaultPeerKill
	// FaultRingStall simulates ring credit exhaustion: the operation
	// fails with shmem.ErrRingStalled without touching the ring, which
	// is the ORB's trigger for degrading to the marshaled path.
	FaultRingStall
	// FaultSlotCorrupt arms the producer's corrupt-next hook: the next
	// published record carries a wrong sequence tag and the consumer
	// reports it as corrupt.
	FaultSlotCorrupt
	// FaultENOBUFS simulates the kernel refusing to pin pages for a
	// MSG_ZEROCOPY send (optmem exhaustion): the transport degrades
	// that one send to a plain copying write and completes it
	// immediately as copied.
	FaultENOBUFS
	// FaultShortSplice simulates a sendfile/splice transferring only
	// part of the requested file region before failing.
	FaultShortSplice
	// FaultDropCompletion delivers a zero-copy send's bytes but
	// suppresses its errqueue completion notification, so the sender's
	// lease is never settled — the lease sweeper must reclaim it.
	FaultDropCompletion
)

func (k FaultKind) String() string {
	switch k {
	case FaultReset:
		return "reset"
	case FaultTruncate:
		return "truncate"
	case FaultStall:
		return "stall"
	case FaultSlow:
		return "slow"
	case FaultRefuse:
		return "refuse"
	case FaultPeerKill:
		return "peer-kill"
	case FaultRingStall:
		return "ring-stall"
	case FaultSlotCorrupt:
		return "slot-corrupt"
	case FaultENOBUFS:
		return "enobufs"
	case FaultShortSplice:
		return "short-splice"
	case FaultDropCompletion:
		return "drop-completion"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultOp names the transport operation a rule applies to.
type FaultOp int

// Fault operations.
const (
	OpDial FaultOp = iota + 1
	OpRead
	OpWrite
)

func (op FaultOp) String() string {
	switch op {
	case OpDial:
		return "dial"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("FaultOp(%d)", int(op))
	}
}

// ConnClass classifies a connection by its role in the split
// control/data architecture.
type ConnClass int

// Connection classes. A connection's class is unknown until its first
// payload-carrying operation; class-specific rules do not match
// unclassified events. Dial events are always classless, so OpDial
// rules must use ClassAny.
const (
	ClassAny ConnClass = iota
	ClassControl
	ClassData
	// ClassShm marks ring operations of the shared-memory data plane.
	// SHM connections consult their injector directly (wrapping them in
	// Faulty would hide the DirectReader fast path), classifying ring
	// deposits/claims as ClassShm and stream bytes as ClassControl.
	ClassShm
	// ClassKzc marks kernel zero-copy operations (MSG_ZEROCOPY sends
	// and sendfile transfers) of the kzc transport. Like SHM, kzc
	// connections consult their injector directly — a Faulty wrapper
	// would hide the ZeroCopyWriter/FileSender fast paths.
	ClassKzc
)

func (c ConnClass) String() string {
	switch c {
	case ClassAny:
		return "any"
	case ClassControl:
		return "ctrl"
	case ClassData:
		return "data"
	case ClassShm:
		return "shm"
	case ClassKzc:
		return "kzc"
	default:
		return fmt.Sprintf("ConnClass(%d)", int(c))
	}
}

// Rule describes one fault: which operation and connection class it
// targets, when it triggers, and what it does.
type Rule struct {
	Op    FaultOp
	Kind  FaultKind
	Class ConnClass
	// Nth triggers the fault on the Nth matching event (1-based),
	// counted across all connections of the transport — fully
	// deterministic. 0 means trigger probabilistically via Prob.
	Nth int
	// Prob triggers the fault on each matching event with this
	// probability, drawn from the injector's seeded generator. Ignored
	// when Nth > 0.
	Prob float64
	// Count bounds how many times the rule fires: 0 means once for Nth
	// rules and unlimited for Prob rules.
	Count int
	// TruncateAt is the number of bytes a Truncate lets through before
	// cutting the stream (0 cuts immediately).
	TruncateAt int
	// Delay is the Stall pause, or the inter-chunk pause for Slow.
	Delay time.Duration
	// Chunk is the Slow write chunk size (default 1024).
	Chunk int
}

// ruleState pairs a rule with its trigger bookkeeping.
type ruleState struct {
	Rule
	seen  int // matching events observed
	fired int // times the fault actually triggered
}

// FaultInjector decides, reproducibly from a seed, which transport
// events fail and how. One injector is shared by every connection of a
// Faulty transport; its event counters are global, so "the 3rd data
// write" means the 3rd across the whole process.
type FaultInjector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState
	log   []string
	fired atomic.Int64
}

// NewFaultInjector returns an injector whose probabilistic decisions
// derive from seed.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{rng: rand.New(rand.NewSource(seed))}
}

// Add registers a rule and returns the injector for chaining.
func (inj *FaultInjector) Add(r Rule) *FaultInjector {
	inj.mu.Lock()
	inj.rules = append(inj.rules, &ruleState{Rule: r})
	inj.mu.Unlock()
	return inj
}

// Fired returns how many faults have triggered so far.
func (inj *FaultInjector) Fired() int64 { return inj.fired.Load() }

// Log returns a copy of the fired-fault log, one line per fault, for
// reproducing a failure schedule.
func (inj *FaultInjector) Log() []string {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]string, len(inj.log))
	copy(out, inj.log)
	return out
}

// decide records one matching event for every applicable rule and
// returns the first rule that triggers, or nil. The returned snapshot
// is a value copy, safe to read without the injector lock.
func (inj *FaultInjector) decide(op FaultOp, class ConnClass) *Rule {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var hit *ruleState
	for _, r := range inj.rules {
		if r.Op != op {
			continue
		}
		if r.Class != ClassAny && r.Class != class {
			continue
		}
		r.seen++
		if hit != nil {
			continue // keep counting events for later rules
		}
		limit := r.Count
		if limit == 0 {
			if r.Nth > 0 {
				limit = 1
			} else {
				limit = int(^uint(0) >> 1)
			}
		}
		if r.fired >= limit {
			continue
		}
		trigger := false
		if r.Nth > 0 {
			trigger = r.seen >= r.Nth
		} else if r.Prob > 0 {
			trigger = inj.rng.Float64() < r.Prob
		}
		if trigger {
			hit = r
		}
	}
	if hit == nil {
		return nil
	}
	hit.fired++
	inj.fired.Add(1)
	inj.log = append(inj.log, fmt.Sprintf("%s %s #%d: %s", hit.Op, class, hit.seen, hit.Kind))
	rc := hit.Rule
	return &rc
}

// ---------------------------------------------------------------------------
// Faulty transport

// Faulty wraps another transport and injects the faults decided by Inj
// into every connection it creates (dialed or accepted).
type Faulty struct {
	Inner Transport
	Inj   *FaultInjector
}

// Name implements Transport.
func (t *Faulty) Name() string { return "faulty(" + t.Inner.Name() + ")" }

// Listen implements Transport.
func (t *Faulty) Listen(addr string) (Listener, error) {
	l, err := t.Inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &faultyListener{l: l, inj: t.Inj}, nil
}

// Dial implements Transport. Dial events are classless: only ClassAny
// rules match.
func (t *Faulty) Dial(addr string) (Conn, error) {
	if r := t.Inj.decide(OpDial, ClassAny); r != nil {
		switch r.Kind {
		case FaultStall, FaultSlow:
			time.Sleep(r.Delay)
		default:
			return nil, fmt.Errorf("faultconn: dial %s: injected %s", addr, r.Kind)
		}
	}
	c, err := t.Inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &faultyConn{inner: c, inj: t.Inj}, nil
}

type faultyListener struct {
	l   Listener
	inj *FaultInjector
}

func (l *faultyListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return &faultyConn{inner: c, inj: l.inj}, nil
}

func (l *faultyListener) Close() error { return l.l.Close() }
func (l *faultyListener) Addr() string { return l.l.Addr() }

// faultyConn applies injector decisions to one connection. The class is
// detected from the first bytes written or received: the ZC data
// preamble ("ZCDC") marks a data channel, anything else the control
// stream.
type faultyConn struct {
	inner Conn
	inj   *FaultInjector
	class atomic.Int32 // 0 = unknown, else ConnClass
}

func (c *faultyConn) classify(p []byte) ConnClass {
	if cl := ConnClass(c.class.Load()); cl != ClassAny {
		return cl
	}
	if len(p) < 4 {
		return ClassAny
	}
	cl := ClassControl
	if p[0] == 'Z' && p[1] == 'C' && p[2] == 'D' && p[3] == 'C' {
		cl = ClassData
	}
	c.class.CompareAndSwap(0, int32(cl))
	return ConnClass(c.class.Load())
}

// fail closes the underlying connection and returns the injected error.
func (c *faultyConn) fail(kind FaultKind, op string) error {
	_ = c.inner.Close()
	return fmt.Errorf("faultconn: injected %s on %s", kind, op)
}

func (c *faultyConn) Write(p []byte) (int, error) {
	cl := c.classify(p)
	if r := c.inj.decide(OpWrite, cl); r != nil {
		switch r.Kind {
		case FaultReset, FaultRefuse:
			return 0, c.fail(r.Kind, "write")
		case FaultTruncate:
			n := min(r.TruncateAt, len(p))
			if n > 0 {
				_, _ = c.inner.Write(p[:n])
			}
			return n, c.fail(r.Kind, "write")
		case FaultStall:
			time.Sleep(r.Delay)
		case FaultSlow:
			return c.slowWrite(p, r)
		}
	}
	return c.inner.Write(p)
}

func (c *faultyConn) slowWrite(p []byte, r *Rule) (int, error) {
	chunk := r.Chunk
	if chunk <= 0 {
		chunk = 1024
	}
	total := 0
	for len(p) > 0 {
		n := min(chunk, len(p))
		w, err := c.inner.Write(p[:n])
		total += w
		if err != nil {
			return total, err
		}
		p = p[n:]
		if len(p) > 0 && r.Delay > 0 {
			time.Sleep(r.Delay)
		}
	}
	return total, nil
}

func (c *faultyConn) WriteGather(segs ...[]byte) (int64, error) {
	var first []byte
	for _, s := range segs {
		if len(s) > 0 {
			first = s
			break
		}
	}
	cl := c.classify(first)
	if r := c.inj.decide(OpWrite, cl); r != nil {
		switch r.Kind {
		case FaultReset, FaultRefuse:
			return 0, c.fail(r.Kind, "gather write")
		case FaultTruncate:
			remain := r.TruncateAt
			var written int64
			for _, s := range segs {
				if remain <= 0 {
					break
				}
				n := min(remain, len(s))
				w, _ := c.inner.Write(s[:n])
				written += int64(w)
				remain -= n
			}
			return written, c.fail(r.Kind, "gather write")
		case FaultStall:
			time.Sleep(r.Delay)
		case FaultSlow:
			var total int64
			for _, s := range segs {
				n, err := c.slowWrite(s, r)
				total += int64(n)
				if err != nil {
					return total, err
				}
			}
			return total, nil
		}
	}
	return c.inner.WriteGather(segs...)
}

func (c *faultyConn) Read(p []byte) (int, error) {
	if cl := ConnClass(c.class.Load()); cl != ClassAny {
		if r := c.inj.decide(OpRead, cl); r != nil {
			switch r.Kind {
			case FaultReset, FaultRefuse:
				return 0, c.fail(r.Kind, "read")
			case FaultTruncate:
				if r.TruncateAt > 0 && r.TruncateAt < len(p) {
					p = p[:r.TruncateAt]
				}
				n, _ := c.inner.Read(p)
				return n, c.fail(r.Kind, "read")
			case FaultStall, FaultSlow:
				time.Sleep(r.Delay)
			}
		}
		return c.inner.Read(p)
	}
	// Class not yet known: read first, classify from the received
	// bytes, then decide. A triggered reset drops the bytes — the fault
	// raced their delivery.
	n, err := c.inner.Read(p)
	if err != nil || n == 0 {
		return n, err
	}
	cl := c.classify(p[:n])
	if r := c.inj.decide(OpRead, cl); r != nil {
		switch r.Kind {
		case FaultReset, FaultRefuse, FaultTruncate:
			return 0, c.fail(r.Kind, "read")
		case FaultStall, FaultSlow:
			time.Sleep(r.Delay)
		}
	}
	return n, err
}

func (c *faultyConn) Close() error       { return c.inner.Close() }
func (c *faultyConn) LocalAddr() string  { return c.inner.LocalAddr() }
func (c *faultyConn) RemoteAddr() string { return c.inner.RemoteAddr() }
