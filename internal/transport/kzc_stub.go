//go:build !linux

package transport

// KZC is the kernel zero-copy transport (MSG_ZEROCOPY + sendfile),
// which requires Linux. This stub keeps non-Linux builds compiling;
// Listen and Dial report ErrKernelZCUnsupported.
type KZC struct {
	Threshold   int
	CopiedLimit int
	Disable     bool
	Stats       *Stats
	Faults      *FaultInjector
}

// Name implements Transport.
func (t *KZC) Name() string { return "kzc" }

// Listen implements Transport; it always fails on non-Linux platforms.
func (t *KZC) Listen(addr string) (Listener, error) {
	return nil, ErrKernelZCUnsupported
}

// Dial implements Transport; it always fails on non-Linux platforms.
func (t *KZC) Dial(addr string) (Conn, error) {
	return nil, ErrKernelZCUnsupported
}
