//go:build !linux

package transport

import (
	"time"

	"zcorba/internal/shmem"
)

// SHM is the shared-memory transport. Off Linux the memfd/SCM_RIGHTS
// plumbing is not wired up: the type exists so scheme parsing and
// configuration code compile everywhere, but Listen and Dial report
// shmem.ErrUnsupported.
type SHM struct {
	Dir          string
	SlotSize     int
	SlotCount    int
	StallTimeout time.Duration
	Stats        *Stats
	Faults       *FaultInjector
}

// Name implements Transport.
func (t *SHM) Name() string { return "shm" }

// Listen implements Transport (unsupported on this platform).
func (t *SHM) Listen(addr string) (Listener, error) { return nil, shmem.ErrUnsupported }

// Dial implements Transport (unsupported on this platform).
func (t *SHM) Dial(addr string) (Conn, error) { return nil, shmem.ErrUnsupported }
