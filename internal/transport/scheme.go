package transport

import (
	"fmt"
	"strings"
)

// SplitScheme splits an endpoint URI into its scheme and the address
// the matching transport dials: "tcp://h:p" → ("tcp", "h:p"),
// "shm:///tmp/a.sock" → ("shm", "/tmp/a.sock"). Addresses without a
// scheme return ("", addr) so callers can apply their own default.
// The shm rest keeps no scheme here but SHM accepts both forms.
func SplitScheme(addr string) (scheme, rest string) {
	i := strings.Index(addr, "://")
	if i < 0 {
		return "", addr
	}
	return addr[:i], addr[i+len("://"):]
}

// DefaultInProc is the process-wide registry behind inproc:// URIs
// resolved by FromAddr: every caller that parses an inproc address
// through FromAddr reaches the same listeners.
var DefaultInProc = &InProc{}

// FromAddr maps an endpoint URI to the transport it implies plus the
// address to pass to that transport's Listen/Dial. Recognized schemes
// are tcp://, inproc://, shm://, and kzc://; a bare address defaults to TCP
// (the historical behavior of every dial path in the repo). The stats
// sink, when non-nil, is attached to freshly created transports
// (DefaultInProc keeps its own).
func FromAddr(addr string, stats *Stats) (Transport, string, error) {
	scheme, rest := SplitScheme(addr)
	switch scheme {
	case "", "tcp":
		return &TCP{Stats: stats}, rest, nil
	case "inproc":
		return DefaultInProc, rest, nil
	case "shm":
		return &SHM{Stats: stats}, rest, nil
	case "kzc":
		return &KZC{Stats: stats}, rest, nil
	default:
		return nil, "", fmt.Errorf("transport: unknown endpoint scheme %q in %q", scheme, addr)
	}
}
