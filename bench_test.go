// Package bench is the benchmark harness of EXPERIMENTS.md: one
// testing.B benchmark per table and figure of the paper's evaluation
// (§5). Each benchmark reports B/op-style throughput via SetBytes, so
//
//	go test -bench=. -benchmem
//
// prints the measured MB/s of every configuration on this machine.
// The absolute 1999-testbed numbers come from internal/simnet (see
// cmd/figures); these benchmarks establish the *relative* claims on
// real Go code: the zero-copy ORB tracks raw sockets, the standard ORB
// trails far behind, and the copying stack costs what the model says
// it costs.
package bench

import (
	"fmt"
	"testing"

	"zcorba/internal/framework"
	"zcorba/internal/media"
	"zcorba/internal/mpeg"
	"zcorba/internal/naming"
	"zcorba/internal/orb"
	"zcorba/internal/transport"
	"zcorba/internal/ttcp"
	"zcorba/internal/zcbuf"
)

// benchSizes is the subset of the paper's sweep used for benchmarks
// (the full 13-point sweep runs via cmd/figures -measure).
var benchSizes = []int{4 << 10, 64 << 10, 1 << 20, 4 << 20}

func sizeName(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dM", n>>20)
	}
	return fmt.Sprintf("%dK", n>>10)
}

// stdStack emulates the standard (copying) kernel TCP path.
func stdStack() transport.Transport {
	return &transport.Copying{Inner: &transport.TCP{}, SendCopies: 1, RecvCopies: 1}
}

// zcStack is the zero-copy stack: plain TCP with gather writes and
// deposit reads (no user-space copies at all).
func zcStack() transport.Transport { return &transport.TCP{} }

// benchSocket measures the raw-socket TTCP over the given stack.
func benchSocket(b *testing.B, tr transport.Transport) {
	for _, size := range benchSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			sink, err := ttcp.NewSocketSink(tr, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer sink.Close()
			b.SetBytes(int64(size))
			b.ResetTimer()
			if _, err := ttcp.SocketSend(tr, sink.Addr(), size, b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// benchCorba measures the CORBA TTCP for the given stack and ORB path.
func benchCorba(b *testing.B, mk func() transport.Transport, zeroCopy bool) {
	for _, size := range benchSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			sink, err := ttcp.NewCorbaSink(mk(), zeroCopy, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer sink.Close()
			client, err := orb.New(orb.Options{Transport: mk(), ZeroCopy: zeroCopy})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Shutdown()
			b.SetBytes(int64(size))
			b.ResetTimer()
			if _, err := ttcp.CorbaSend(client, sink.IOR, size, b.N, zeroCopy); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if zeroCopy {
				if n := client.Stats().PayloadCopyBytes.Load() +
					sink.ORB.Stats().PayloadCopyBytes.Load(); n != 0 {
					b.Fatalf("zero-copy bench copied %d payload bytes", n)
				}
			}
		})
	}
}

// --- Gathered deposits: SendBuffers trains vs sequential deposits ---------

// gatherBlock is the per-segment payload of the gather series (the
// acceptance point is 8×128 KiB per train).
const gatherBlock = 128 << 10

// benchGatherTrain measures one SendBuffers train of segs registered
// buffers per op on the tcp:// plane: one vectored data write and one
// reply per train, with per-buffer completions gating reuse. Trains run
// with window 2 — the per-buffer completion callbacks exist precisely
// so the next train's buffers can be reused while the previous train's
// kernel references drain. The run asserts the single-writev-per-train
// contract from the client's transport counters: exactly one control
// write plus one data-plane gather write per train.
func benchGatherTrain(b *testing.B, segs, block int) {
	cst := &transport.Stats{}
	sink, err := ttcp.NewCorbaSinkConfig(ttcp.SinkConfig{
		Transport: zcStack(), ZeroCopy: true, GatherSegs: segs,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	client, err := orb.New(orb.Options{Transport: &transport.TCP{Stats: cst}, ZeroCopy: true})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Shutdown()
	// Warm the connection and pools so the counter window below covers
	// steady-state trains only.
	if _, err := ttcp.CorbaSendGather(client, sink.GatherIOR, block, 4, segs, 2); err != nil {
		b.Fatal(err)
	}
	w0 := cst.Snapshot().Writes
	b.SetBytes(int64(segs) * int64(block))
	b.ResetTimer()
	if _, err := ttcp.CorbaSendGather(client, sink.GatherIOR, block, b.N, segs, 2); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if n := client.Stats().PayloadCopyBytes.Load() +
		sink.ORB.Stats().PayloadCopyBytes.Load(); n != 0 {
		b.Fatalf("gather bench copied %d payload bytes", n)
	}
	// One GIOP control write + one vectored data write per train; any
	// more means a train was split into multiple data-plane syscalls.
	if dw := cst.Snapshot().Writes - w0; dw != int64(2*b.N) {
		b.Fatalf("%d writes for %d trains, want exactly 2 per train", dw, b.N)
	}
}

func BenchmarkGather_2seg(b *testing.B)  { benchGatherTrain(b, 2, gatherBlock) }
func BenchmarkGather_8seg(b *testing.B)  { benchGatherTrain(b, 8, gatherBlock) }
func BenchmarkGather_32seg(b *testing.B) { benchGatherTrain(b, 32, gatherBlock) }

// BenchmarkGatherSmall_8seg is the overhead-dominated point of the
// series: 8×16 KiB trains, where the per-request costs the train
// amortizes (request marshal, dispatch, reply, lease bookkeeping)
// outweigh the payload copies. This is the regime the paper's
// crossover argument targets; the 128 KiB points above are
// memory-bandwidth-bound on a loopback host (see docs/PERF.md).
func BenchmarkGatherSmall_8seg(b *testing.B) { benchGatherTrain(b, 8, 16<<10) }

// BenchmarkGather_Sequential8 is the baseline the 8-segment train is
// measured against: the same 8×128 KiB payload sent as 8 sequential
// single-buffer deposits (one zput round trip each). The acceptance
// bar is Gather_8seg ≥ 2× this configuration's ops/sec.
func BenchmarkGather_Sequential8(b *testing.B) {
	sink, err := ttcp.NewCorbaSink(zcStack(), true, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	client, err := orb.New(orb.Options{Transport: zcStack(), ZeroCopy: true})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Shutdown()
	b.SetBytes(8 * gatherBlock)
	b.ResetTimer()
	if _, err := ttcp.CorbaSend(client, sink.IOR, gatherBlock, 8*b.N, true); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGatherSmall_Sequential8 is the sequential baseline for the
// 16 KiB train point.
func BenchmarkGatherSmall_Sequential8(b *testing.B) {
	sink, err := ttcp.NewCorbaSink(zcStack(), true, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	client, err := orb.New(orb.Options{Transport: zcStack(), ZeroCopy: true})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Shutdown()
	b.SetBytes(8 * 16 << 10)
	b.ResetTimer()
	if _, err := ttcp.CorbaSend(client, sink.IOR, 16<<10, 8*b.N, true); err != nil {
		b.Fatal(err)
	}
}

// --- Figure 5: raw TCP vs unmodified CORBA (standard stack) ---------------

func BenchmarkFig5_RawTCP(b *testing.B)        { benchSocket(b, stdStack()) }
func BenchmarkFig5_CorbaStandard(b *testing.B) { benchCorba(b, stdStack, false) }

// --- Figure 6 left: standard vs zero-copy TCP stack (sockets) -------------

func BenchmarkFig6Left_StdTCP(b *testing.B) { benchSocket(b, stdStack()) }
func BenchmarkFig6Left_ZCTCP(b *testing.B)  { benchSocket(b, zcStack()) }

// --- Figure 6 right: standard ORB vs zero-copy ORB -------------------------

func BenchmarkFig6Right_CorbaStandard(b *testing.B)   { benchCorba(b, stdStack, false) }
func BenchmarkFig6Right_ZCCorbaStdStack(b *testing.B) { benchCorba(b, stdStack, true) }
func BenchmarkFig6Right_ZCCorbaZCStack(b *testing.B)  { benchCorba(b, zcStack, true) }

// --- E7 ablation: where does the win come from? ----------------------------

// BenchmarkAblation_GeneralMarshalLoop is the unmodified path: the
// TypeCode interpreter's per-element loop plus the demarshal copy.
func BenchmarkAblation_GeneralMarshalLoop(b *testing.B) { benchCorba(b, zcStack, false) }

// BenchmarkAblation_ZCTypeFallback sends ZC-typed parameters between
// ORBs without the extension enabled: the type system falls back to
// standard marshaling (interoperability path), isolating the cost the
// deposit machinery removes.
func BenchmarkAblation_ZCTypeFallback(b *testing.B) {
	size := 1 << 20
	sink, err := ttcp.NewCorbaSink(zcStack(), false, nil) // extension off
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	client, err := orb.New(orb.Options{Transport: zcStack(), ZeroCopy: false})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Shutdown()
	b.SetBytes(int64(size))
	b.ResetTimer()
	if _, err := ttcp.CorbaSend(client, sink.IOR, size, b.N, true); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if client.Stats().ZCFallbacks.Load() == 0 {
		b.Fatal("fallback path was not exercised")
	}
}

// BenchmarkAblation_FullZeroCopy is marshal bypass + direct deposit.
func BenchmarkAblation_FullZeroCopy(b *testing.B) {
	size := 1 << 20
	sink, err := ttcp.NewCorbaSink(zcStack(), true, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	client, err := orb.New(orb.Options{Transport: zcStack(), ZeroCopy: true})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Shutdown()
	b.SetBytes(int64(size))
	b.ResetTimer()
	if _, err := ttcp.CorbaSend(client, sink.IOR, size, b.N, true); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblation_Collocation is the §2.1 local-call bypass: same
// process, no marshaling, no wire.
func BenchmarkAblation_Collocation(b *testing.B) {
	size := 1 << 20
	o, err := orb.New(orb.Options{Transport: &transport.InProc{}, Collocation: true})
	if err != nil {
		b.Fatal(err)
	}
	defer o.Shutdown()
	impl := &benchStore{}
	ref, err := o.Activate("store", media.Media_StoreSkeleton{Impl: impl})
	if err != nil {
		b.Fatal(err)
	}
	stub := media.Media_StoreStub{Ref: ref}
	payload := zcbuf.Wrap(make([]byte, size))
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stub.Zput(payload); err != nil {
			b.Fatal(err)
		}
	}
}

type benchStore struct{ n uint64 }

func (s *benchStore) GetReceived() (uint64, error) { return s.n, nil }
func (s *benchStore) Put(p []byte) (uint32, error) {
	s.n += uint64(len(p))
	return uint32(len(p)), nil
}
func (s *benchStore) Zput(p *zcbuf.Buffer) (uint32, error) {
	s.n += uint64(p.Len())
	return uint32(p.Len()), nil
}
func (s *benchStore) Get(n uint32) ([]byte, error) { return make([]byte, n), nil }
func (s *benchStore) Zget(n uint32) (*zcbuf.Buffer, error) {
	return zcbuf.Wrap(make([]byte, n)), nil
}
func (s *benchStore) Describe(seq uint32) (media.Media_FrameInfo, error) {
	return media.Media_FrameInfo{Seq: seq}, nil
}
func (s *benchStore) Reset() error { s.n = 0; return nil }

// --- E6: the §5.4 transcoder farm ------------------------------------------

func benchTranscoder(b *testing.B, zc bool) {
	nsORB, err := orb.New(orb.Options{Transport: &transport.TCP{}})
	if err != nil {
		b.Fatal(err)
	}
	defer nsORB.Shutdown()
	nsIOR, err := naming.Serve(nsORB)
	if err != nil {
		b.Fatal(err)
	}
	const workers = 3
	for i := 0; i < workers; i++ {
		w, err := orb.New(orb.Options{Transport: &transport.TCP{}, ZeroCopy: zc})
		if err != nil {
			b.Fatal(err)
		}
		defer w.Shutdown()
		nc, err := naming.Connect(w, nsIOR)
		if err != nil {
			b.Fatal(err)
		}
		if err := framework.StartWorker(w, nc, fmt.Sprintf("enc-%d", i), 8); err != nil {
			b.Fatal(err)
		}
	}
	master, err := orb.New(orb.Options{Transport: &transport.TCP{}, ZeroCopy: zc})
	if err != nil {
		b.Fatal(err)
	}
	defer master.Shutdown()
	nc, err := naming.Connect(master, nsIOR)
	if err != nil {
		b.Fatal(err)
	}
	farm, err := framework.Discover(master, nc)
	if err != nil {
		b.Fatal(err)
	}
	const w, h = 480, 272
	b.SetBytes(int64(mpeg.FrameBytes(w, h)))
	b.ResetTimer()
	done := 0
	for done < b.N {
		batch := b.N - done
		if batch > 32 {
			batch = 32
		}
		b.StopTimer()
		src := mpeg.NewMPEG2Source(w, h)
		frames, err := framework.SourceFrames(src, batch)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		results, _, err := farm.Transcode(frames)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for _, r := range results {
			r.Data.Release()
		}
		b.StartTimer()
		done += batch
	}
}

func BenchmarkTranscoderZeroCopy(b *testing.B) { benchTranscoder(b, true) }
func BenchmarkTranscoderStandard(b *testing.B) { benchTranscoder(b, false) }

// --- Request rate: per-request software overhead ---------------------------

// benchWindows are the pipelining depths of the request-rate series:
// window 1 is one request per round trip; deeper windows keep the pipe
// full and expose the per-request software overhead directly.
var benchWindows = []int{1, 8, 32}

// BenchmarkRequestRate_ZC4K sends 4 KiB zero-copy blocks at each
// window depth. allocs/op here is the steady-state allocation count of
// the whole request/reply engine (client and server share the
// process); docs/PERF.md records the gated budget.
func BenchmarkRequestRate_ZC4K(b *testing.B) {
	for _, w := range benchWindows {
		b.Run(fmt.Sprintf("window%d", w), func(b *testing.B) {
			sink, err := ttcp.NewCorbaSink(zcStack(), true, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer sink.Close()
			client, err := orb.New(orb.Options{Transport: zcStack(), ZeroCopy: true})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Shutdown()
			b.SetBytes(4 << 10)
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := ttcp.CorbaSendWindow(client, sink.IOR, 4<<10, b.N, w, true); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if n := client.Stats().PayloadCopyBytes.Load() +
				sink.ORB.Stats().PayloadCopyBytes.Load(); n != 0 {
				b.Fatalf("zero-copy bench copied %d payload bytes", n)
			}
		})
	}
}

// BenchmarkRequestRate_Ping invokes the no-payload _get_received
// attribute at each window depth: pure per-request GIOP overhead, no
// payload at all.
func BenchmarkRequestRate_Ping(b *testing.B) {
	for _, w := range benchWindows {
		b.Run(fmt.Sprintf("window%d", w), func(b *testing.B) {
			sink, err := ttcp.NewCorbaSink(zcStack(), true, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer sink.Close()
			client, err := orb.New(orb.Options{Transport: zcStack(), ZeroCopy: true})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Shutdown()
			ref, err := client.StringToObject(sink.IOR)
			if err != nil {
				b.Fatal(err)
			}
			p := ref.Pipeline(media.Media_StoreIface.Ops["_get_received"], w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Submit(nil, nil); err != nil {
					b.Fatal(err)
				}
			}
			if err := p.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// --- micro: the marshal engine itself --------------------------------------

// BenchmarkMarshalLoop measures the general per-element interpreter
// (the copy the paper's Figure 5 blames) against a block copy.
func BenchmarkMarshalLoop(b *testing.B) {
	o, err := orb.New(orb.Options{Transport: &transport.InProc{}})
	if err != nil {
		b.Fatal(err)
	}
	defer o.Shutdown()
	_ = o
	b.Run("general-1M", func(b *testing.B) {
		payload := make([]byte, 1<<20)
		b.SetBytes(1 << 20)
		for i := 0; i < b.N; i++ {
			sinkMarshal(payload)
		}
	})
	b.Run("blockcopy-1M", func(b *testing.B) {
		payload := make([]byte, 1<<20)
		dst := make([]byte, 1<<20)
		b.SetBytes(1 << 20)
		for i := 0; i < b.N; i++ {
			copy(dst, payload)
		}
	})
}

//go:noinline
func sinkMarshal(p []byte) {
	// Mirror of the interpreter's per-element loop shape.
	buf := marshalScratch[:0]
	for _, x := range p {
		buf = append(buf, x)
	}
	marshalScratch = buf
}

var marshalScratch = make([]byte, 0, 1<<20)
